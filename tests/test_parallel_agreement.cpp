// Differential fuzz harness for the sharded conservative-parallel
// simulator (snn/parallel_sim.h): on random networks and random inputs,
// ParallelSimulator at S ∈ {1, 2, 3, 8, n} shards must be event-for-event
// identical to the serial Simulator (both queue kinds) and to the
// nested-vector ReferenceSimulator — per-neuron spike times, counts,
// causes, final membrane potentials, canonical spike logs, and the
// semantic SimStats. Probes, terminal-mode termination, reset() reuse, and
// the batch driver's shard-parallelism mode are covered by the same
// instances. This file is the PR's correctness oracle; the ThreadSanitizer
// CI job runs it with real worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/random.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_batch.h"
#include "nga/sssp_event.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "snn/network.h"
#include "snn/parallel_sim.h"
#include "snn/reference_sim.h"
#include "snn/simulator.h"

namespace sga {
namespace {

/// Random mixed SNN, same family as test_fuzz_agreement's queue fuzz:
/// integrators and gates, inhibition, self-loops, delays spanning (and
/// occasionally exceeding) the 64-slot calendar ring window.
snn::Network random_snn(std::uint64_t seed) {
  Rng rng(0xCA1E + seed * 0x9E3779B97F4A7C15ULL);
  snn::Network net;
  const auto n = static_cast<std::size_t>(rng.uniform_int(5, 40));
  for (std::size_t i = 0; i < n; ++i) {
    snn::NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    p.v_reset = static_cast<Voltage>(rng.uniform_int(-1, 0));
    const int mode = static_cast<int>(rng.uniform_int(0, 2));
    p.tau = mode == 0 ? 0.0 : (mode == 1 ? 1.0 : 0.5);
    net.add_neuron(p);
  }
  const auto syn = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(n),
                      static_cast<std::int64_t>(5 * n)));
  for (std::size_t s = 0; s < syn; ++s) {
    const auto a = static_cast<NeuronId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<NeuronId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto w = static_cast<SynWeight>(rng.uniform_int(-2, 3));
    const Delay d = rng.bernoulli(0.1) ? rng.uniform_int(64, 300)
                                       : rng.uniform_int(1, 9);
    net.add_synapse(a, b, w, d);
  }
  return net;
}

template <typename Sim>
void inject_all(Sim& sim, std::uint64_t seed, std::size_t n) {
  Rng rng(0xD41E + seed);
  for (int i = 0; i < 6; ++i) {
    sim.inject_spike(static_cast<NeuronId>(rng.uniform_int(
                         0, static_cast<std::int64_t>(n) - 1)),
                     rng.uniform_int(0, 200));
  }
  // Far-future injection: the parallel engine's window must jump across
  // the dead zone exactly like the serial cursor does.
  sim.inject_spike(0, 450);
}

/// The canonical spike-log order the parallel engine reports: (time, id).
/// A neuron fires at most once per step, so sorting a serial log this way
/// is a permutation-free re-ordering within each time step.
std::vector<std::pair<Time, NeuronId>> canonical(
    std::vector<std::pair<Time, NeuronId>> log) {
  std::sort(log.begin(), log.end());
  return log;
}

/// Shard counts exercised for every instance: identity, small, more shards
/// than workers, and one shard per neuron.
std::vector<std::size_t> shard_counts(std::size_t n) {
  return {1, 2, 3, 8, n};
}

struct SerialRun {
  snn::SimStats stats;
  std::vector<std::pair<Time, NeuronId>> log;  // canonical order
  std::vector<Time> first;
  std::vector<Time> last;
  std::vector<std::uint32_t> counts;
  std::vector<NeuronId> causes;
  std::vector<Voltage> v;
};

SerialRun drive_serial(const snn::CompiledNetwork& net, std::uint64_t seed,
                       const snn::SimConfig& cfg, snn::QueueKind kind) {
  snn::Simulator sim(net, kind);
  inject_all(sim, seed, net.num_neurons());
  SerialRun r;
  r.stats = sim.run(cfg);
  r.log = canonical(sim.spike_log());
  r.first = sim.first_spikes();
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    r.last.push_back(sim.last_spike(id));
    r.counts.push_back(sim.spike_count(id));
    r.causes.push_back(sim.first_spike_cause(id));
    r.v.push_back(sim.potential(id));
  }
  return r;
}

void expect_agrees(const SerialRun& want, const snn::ParallelSimulator& sim,
                   const snn::SimStats& stats, const char* what,
                   std::uint64_t seed, std::size_t shards) {
  const std::size_t n = sim.network().num_neurons();
  SCOPED_TRACE(::testing::Message() << what << " seed " << seed << " S "
                                    << shards << " threads "
                                    << sim.num_threads());
  EXPECT_EQ(sim.spike_log(), want.log);
  EXPECT_EQ(sim.first_spikes(), want.first);
  for (NeuronId id = 0; id < n; ++id) {
    ASSERT_EQ(sim.first_spike(id), want.first[id]) << "neuron " << id;
    ASSERT_EQ(sim.last_spike(id), want.last[id]) << "neuron " << id;
    ASSERT_EQ(sim.spike_count(id), want.counts[id]) << "neuron " << id;
    ASSERT_EQ(sim.first_spike_cause(id), want.causes[id]) << "neuron " << id;
    // Exact: the integer synapse weights make per-step accumulation
    // order-insensitive, so potentials agree bit for bit.
    ASSERT_EQ(sim.potential(id), want.v[id]) << "neuron " << id;
  }
  // Semantic stats. Queue-level counters (peak/occupancy/spills/scans/
  // ring size) are per-queue properties and intentionally NOT compared —
  // see the parallel_sim.h header contract.
  EXPECT_EQ(stats.spikes, want.stats.spikes);
  EXPECT_EQ(stats.deliveries, want.stats.deliveries);
  EXPECT_EQ(stats.event_times, want.stats.event_times);
  EXPECT_EQ(stats.end_time, want.stats.end_time);
  EXPECT_EQ(stats.execution_time, want.stats.execution_time);
  EXPECT_EQ(stats.hit_terminal, want.stats.hit_terminal);
  EXPECT_EQ(stats.hit_time_limit, want.stats.hit_time_limit);
}

class ParallelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelFuzz, MatchesSerialAndReferenceAtEveryShardCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  cfg.record_causes = true;

  const SerialRun cal = drive_serial(compiled, seed, cfg,
                                     snn::QueueKind::kCalendar);
  const SerialRun map = drive_serial(compiled, seed, cfg,
                                     snn::QueueKind::kMap);
  EXPECT_EQ(cal.log, map.log) << "seed " << seed;
  EXPECT_EQ(cal.causes, map.causes) << "seed " << seed;

  // The pre-CSR reference interpreter anchors the whole chain. It does
  // not implement cause recording, so that knob is dropped for it only.
  snn::ReferenceSimulator ref(net);
  inject_all(ref, seed, n);
  snn::SimConfig ref_cfg = cfg;
  ref_cfg.record_causes = false;
  const snn::SimStats rs = ref.run(ref_cfg);
  EXPECT_EQ(canonical(ref.spike_log()), cal.log) << "seed " << seed;
  EXPECT_EQ(rs.spikes, cal.stats.spikes) << "seed " << seed;

  for (const std::size_t shards : shard_counts(n)) {
    // Thread counts: 1 (inline schedule), 2, and 4 — more workers than
    // cores is fine; the TSan CI job runs this same matrix.
    for (const unsigned threads : {1u, 2u, 4u}) {
      snn::ParallelConfig pcfg;
      pcfg.num_shards = shards;
      pcfg.num_threads = threads;
      snn::ParallelSimulator psim(compiled, pcfg);
      inject_all(psim, seed, n);
      const snn::SimStats stats = psim.run(cfg);
      expect_agrees(cal, psim, stats, "quiescent", seed, shards);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzz, ::testing::Range(0, 24));

class EngineMatrixFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineMatrixFuzz, EveryEnginePartitionStealComboMatchesSerial) {
  // The full ablation matrix of ISSUE 9: {kLpt, kCutRefined} ×
  // {kMailbox, kSharedAtomic} × stealing {off, on} × S ∈ {1, 2, 3, 8},
  // every cell event-for-event identical to the serial engine. Even seeds
  // run causeless — there the shared-atomic ring IS the cross-delivery
  // path; odd seeds record causes, exercising kSharedAtomic's documented
  // fallback to the mailbox channel.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  cfg.record_causes = (seed % 2) == 1;

  const SerialRun cal = drive_serial(compiled, seed, cfg,
                                     snn::QueueKind::kCalendar);

  for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
    for (const snn::PartitionKind part :
         {snn::PartitionKind::kLpt, snn::PartitionKind::kCutRefined}) {
      for (const snn::EngineKind engine :
           {snn::EngineKind::kMailbox, snn::EngineKind::kSharedAtomic}) {
        for (const bool steal : {false, true}) {
          SCOPED_TRACE(::testing::Message()
                       << "partition "
                       << (part == snn::PartitionKind::kLpt ? "lpt" : "cut")
                       << " engine "
                       << (engine == snn::EngineKind::kMailbox ? "mailbox"
                                                               : "atomic")
                       << " steal " << steal);
          snn::ParallelConfig pcfg;
          pcfg.num_shards = shards;
          // 3 workers < 8 shards keeps the stealing path reachable; the
          // TSan CI job runs this same matrix with real threads.
          pcfg.num_threads = 3;
          pcfg.partition = part;
          pcfg.engine = engine;
          pcfg.work_stealing = steal;
          snn::ParallelSimulator psim(compiled, pcfg);
          EXPECT_EQ(psim.engine(), engine);
          EXPECT_EQ(psim.partition_kind(), part);
          inject_all(psim, seed, n);
          const snn::SimStats stats = psim.run(cfg);
          expect_agrees(cal, psim, stats, "matrix", seed, shards);
          if (!steal) {
            EXPECT_EQ(psim.steals(), 0u);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineMatrixFuzz, ::testing::Range(0, 12));

TEST(ParallelRegression, SharedAtomicRingClearsAcrossResetAndTerminalStop) {
  // A terminal stop leaves undelivered arrivals parked in the shared ring
  // (exactly as the mailbox engine leaves undrained mail); reset() must
  // discard them, or the next run would see ghost deliveries.
  const snn::Network net = random_snn(11);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  const SerialRun quiescent = drive_serial(compiled, 11, cfg,
                                           snn::QueueKind::kCalendar);
  ASSERT_FALSE(quiescent.log.empty());

  snn::SimConfig term_cfg = cfg;
  term_cfg.terminal_neurons.push_back(quiescent.log.back().second);
  const SerialRun terminal = drive_serial(compiled, 11, term_cfg,
                                          snn::QueueKind::kCalendar);

  snn::ParallelConfig pcfg;
  pcfg.num_shards = 4;
  pcfg.num_threads = 2;
  pcfg.engine = snn::EngineKind::kSharedAtomic;
  snn::ParallelSimulator psim(compiled, pcfg);
  inject_all(psim, 11, n);
  const snn::SimStats ts = psim.run(term_cfg);
  expect_agrees(terminal, psim, ts, "atomic-terminal", 11, 4);

  psim.reset();
  inject_all(psim, 11, n);
  const snn::SimStats qs = psim.run(cfg);
  expect_agrees(quiescent, psim, qs, "atomic-after-reset", 11, 4);
}

class ParallelTerminalFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelTerminalFuzz, TerminalTerminationMatchesSerialExactly) {
  // Terminal mode is the hardest agreement case: the parallel engine must
  // stop at the END of the terminal's own time step (window length clamps
  // to 1), leaving exactly the same unprocessed queue state behind as the
  // serial break — observable through stats and every per-neuron table.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();
  Rng rng(0x7E51 + seed);

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  cfg.record_causes = true;
  // Any-of for even seeds, all-of (multi-destination readout) for odd.
  const auto terminals = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t i = 0; i < terminals; ++i) {
    cfg.terminal_neurons.push_back(static_cast<NeuronId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }
  cfg.terminate_on_all = (seed % 2) == 1;

  const SerialRun cal = drive_serial(compiled, seed, cfg,
                                     snn::QueueKind::kCalendar);
  for (const std::size_t shards : shard_counts(n)) {
    snn::ParallelConfig pcfg;
    pcfg.num_shards = shards;
    pcfg.num_threads = (seed % 3) == 0 ? 1 : 3;
    snn::ParallelSimulator psim(compiled, pcfg);
    inject_all(psim, seed, n);
    const snn::SimStats stats = psim.run(cfg);
    expect_agrees(cal, psim, stats, "terminal", seed, shards);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelTerminalFuzz, ::testing::Range(0, 16));

class ParallelProbeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelProbeFuzz, ProbesObserveIdenticallyAcrossEngines) {
  // Extends the ProbeFuzz contract to the parallel engine: per-shard
  // probes merged through Probe::absorb_shards must record exactly what a
  // serial probe records (trace and samples in canonical order), and
  // attaching them must not perturb the simulation.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;

  obs::ProbeOptions po;
  po.trace_spikes = true;
  po.count_fires = true;
  po.count_deliveries = true;
  po.sample_potentials = {0, static_cast<NeuronId>(n - 1)};

  obs::Probe serial_probe(po);
  snn::Simulator sim(compiled);
  sim.attach_probe(serial_probe);
  inject_all(sim, seed, n);
  const snn::SimStats ss = sim.run(cfg);
  const auto serial_trace = canonical(serial_probe.spike_trace());
  auto serial_samples = serial_probe.potential_samples();
  std::sort(serial_samples.begin(), serial_samples.end(),
            [](const obs::Probe::PotentialSample& a,
               const obs::Probe::PotentialSample& b) {
              return std::tie(a.time, a.neuron) < std::tie(b.time, b.neuron);
            });

  for (const std::size_t shards : shard_counts(n)) {
    snn::ParallelConfig pcfg;
    pcfg.num_shards = shards;
    pcfg.num_threads = (seed % 2) == 0 ? 2 : 1;
    snn::ParallelSimulator psim(compiled, pcfg);
    obs::Probe par_probe(po);
    psim.attach_probe(par_probe);
    inject_all(psim, seed, n);
    const snn::SimStats ps = psim.run(cfg);
    SCOPED_TRACE(::testing::Message() << "seed " << seed << " S " << shards);

    // Attaching the probe did not perturb the run.
    EXPECT_EQ(ps.spikes, ss.spikes);
    EXPECT_EQ(ps.deliveries, ss.deliveries);
    EXPECT_EQ(psim.spike_log(), canonical(sim.spike_log()));

    // The merged probe saw exactly what the serial probe saw.
    EXPECT_EQ(par_probe.spike_trace(), serial_trace);
    EXPECT_EQ(par_probe.fire_counts(), serial_probe.fire_counts());
    EXPECT_EQ(par_probe.delivery_counts(), serial_probe.delivery_counts());
    EXPECT_EQ(par_probe.total_fires(), serial_probe.total_fires());
    EXPECT_EQ(par_probe.total_deliveries(),
              serial_probe.total_deliveries());
    EXPECT_EQ(par_probe.potential_samples(), serial_samples);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelProbeFuzz, ::testing::Range(0, 10));

class ParallelResetFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelResetFuzz, ResetReusesAcrossRunsLikeAFreshEngine) {
  // reset() must rewind the whole sharded state — queues, mailboxes,
  // per-neuron tables, window bookkeeping — so a second run with different
  // input matches a fresh serial simulator on that input.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  cfg.record_causes = true;

  snn::ParallelConfig pcfg;
  pcfg.num_shards = 3;
  pcfg.num_threads = 2;
  snn::ParallelSimulator psim(compiled, pcfg);

  for (const std::uint64_t round : {seed, seed + 100, seed + 200}) {
    if (round != seed) psim.reset();
    inject_all(psim, round, n);
    const snn::SimStats stats = psim.run(cfg);
    const SerialRun want = drive_serial(compiled, round, cfg,
                                        snn::QueueKind::kCalendar);
    expect_agrees(want, psim, stats, "reset-round", round, 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelResetFuzz, ::testing::Range(0, 8));

TEST(ParallelRegression, SteadyStateRunsAreAllocationFreeAfterReset) {
  // Same pool contract as the serial simulator, summed over shards: a
  // second identical run after reset() must re-use donated bucket storage
  // exclusively (pool_misses == 0), with per-run segment/bulk counters
  // reproduced exactly.
  const snn::Network net = random_snn(7);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;

  snn::ParallelConfig pcfg;
  pcfg.num_shards = 3;
  pcfg.num_threads = 2;
  snn::ParallelSimulator psim(compiled, pcfg);

  inject_all(psim, 7, n);
  const snn::SimStats first = psim.run(cfg);
  ASSERT_GT(first.spikes, 0u);
  EXPECT_GT(first.fanout_segments, 0u);
  EXPECT_GT(first.bulk_appends, 0u);
  EXPECT_GT(first.pool_misses, 0u);  // cold start: every pool is empty

  psim.reset();
  inject_all(psim, 7, n);
  const snn::SimStats second = psim.run(cfg);
  EXPECT_EQ(second.spikes, first.spikes);
  EXPECT_EQ(second.fanout_segments, first.fanout_segments);
  EXPECT_EQ(second.bulk_appends, first.bulk_appends);
  EXPECT_EQ(second.pool_misses, 0u) << "steady-state run allocated buckets";
  EXPECT_GT(second.pool_hits, 0u);
  EXPECT_EQ(second.pool_hits, first.pool_hits + first.pool_misses);
}

TEST(ParallelRegression, WatchedNeuronSubsetFiltersTheLog) {
  const snn::Network net = random_snn(5);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  for (NeuronId id = 0; id < n; id += 2) cfg.watched_neurons.push_back(id);

  snn::Simulator sim(compiled);
  inject_all(sim, 5, n);
  sim.run(cfg);

  snn::ParallelConfig pcfg;
  pcfg.num_shards = 4;
  pcfg.num_threads = 2;
  snn::ParallelSimulator psim(compiled, pcfg);
  inject_all(psim, 5, n);
  psim.run(cfg);
  EXPECT_EQ(psim.spike_log(), canonical(sim.spike_log()));
}

TEST(ParallelRegression, MoreShardsThanNeuronsAndThanThreads) {
  // Surplus shards stay empty; surplus threads clamp to the shard count.
  const snn::Network net = random_snn(2);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  snn::ParallelConfig pcfg;
  pcfg.num_shards = n + 7;
  pcfg.num_threads = 64;
  snn::ParallelSimulator psim(compiled, pcfg);
  EXPECT_EQ(psim.num_shards(), n + 7);
  EXPECT_LE(psim.num_threads(), n + 7);

  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  inject_all(psim, 2, n);
  psim.run(cfg);

  snn::Simulator sim(compiled);
  inject_all(sim, 2, n);
  sim.run(cfg);
  EXPECT_EQ(psim.spike_log(), canonical(sim.spike_log()));
}

TEST(ParallelRegression, MetricsMergeAcrossWorkerThreads) {
  // Per-worker registries must merge into the caller's thread registry:
  // semantic totals equal the run's SimStats, with the psim.* extras.
  const snn::Network net = random_snn(9);
  const snn::CompiledNetwork compiled = net.compile();
  const std::size_t n = compiled.num_neurons();

  obs::MetricsRegistry reg;
  const obs::ScopedThreadMetrics install(&reg);

  snn::ParallelConfig pcfg;
  pcfg.num_shards = 4;
  pcfg.num_threads = 3;
  snn::ParallelSimulator psim(compiled, pcfg);
  inject_all(psim, 9, n);
  snn::SimConfig cfg;
  cfg.max_time = 500;  // recurrent random nets can self-sustain forever
  const snn::SimStats stats = psim.run(cfg);

  EXPECT_EQ(reg.counter("psim.runs"), 1u);
  EXPECT_EQ(reg.counter("sim.spikes"), stats.spikes);
  EXPECT_EQ(reg.counter("sim.deliveries"), stats.deliveries);
  EXPECT_EQ(reg.counter("sim.event_times"), stats.event_times);
  EXPECT_DOUBLE_EQ(reg.gauges().at("psim.shards"), 4.0);
  EXPECT_EQ(reg.timers().at("psim.run_ns").count, 1u);
  // Each of the 3 workers timed its loop once.
  EXPECT_EQ(reg.timers().at("psim.worker_ns").count, 3u);
}

class BatchShardedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BatchShardedFuzz, BatchShardedModeMatchesSerialBatchAndDijkstra) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0xBA7C + seed);
  const auto n = static_cast<std::size_t>(rng.uniform_int(4, 18));
  const Graph g = make_random_graph(
      n, std::min(n * 3, n * (n - 1)), {1, 10}, rng, true);

  std::vector<VertexId> sources;
  const auto want = static_cast<std::size_t>(rng.uniform_int(1, 4));
  while (sources.size() < want) {
    sources.push_back(static_cast<VertexId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
  }

  nga::SsspBatchOptions serial_opt;
  serial_opt.record_parents = true;
  serial_opt.num_threads = 1;
  const auto serial = nga::spiking_sssp_batch(g, sources, serial_opt);

  nga::SsspBatchOptions sharded_opt;
  sharded_opt.record_parents = true;
  sharded_opt.shards = static_cast<std::size_t>(rng.uniform_int(1, 6));
  sharded_opt.num_threads = static_cast<unsigned>(rng.uniform_int(1, 3));
  const auto sharded = nga::spiking_sssp_batch(g, sources, sharded_opt);

  ASSERT_EQ(sharded.runs.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed << " source " << i);
    EXPECT_EQ(sharded.runs[i].dist, serial.runs[i].dist);
    EXPECT_EQ(sharded.runs[i].parent, serial.runs[i].parent);
    EXPECT_EQ(sharded.runs[i].execution_time, serial.runs[i].execution_time);
    EXPECT_EQ(sharded.runs[i].sim.spikes, serial.runs[i].sim.spikes);
    EXPECT_EQ(sharded.runs[i].dist, dijkstra(g, sources[i]).dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchShardedFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace sga
