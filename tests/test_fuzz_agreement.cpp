// Cross-validation fuzzing: on many random instances, every implementation
// of the same problem must agree — the event-driven spiking SSSP vs
// Dijkstra vs the crossbar-embedded run; both gate-level k-hop compilations
// vs Bellman–Ford vs the (min,+) NGA reference; and the approximation
// guarantee. These are the repo's end-to-end consistency oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/random.h"
#include "crossbar/embedding.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/approx.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "nga/matvec.h"
#include "nga/sssp_batch.h"
#include "nga/sssp_event.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "snn/network.h"
#include "snn/reference_sim.h"
#include "snn/simulator.h"

namespace sga {
namespace {

Graph random_instance(std::uint64_t seed, std::size_t max_n) {
  Rng rng(0xF022 + seed * 2654435761ULL);
  const auto n = static_cast<std::size_t>(rng.uniform_int(4, static_cast<std::int64_t>(max_n)));
  if (seed % 5 == 4) {
    // Geometric family: metric-ish weights, bidirectional edges.
    return make_geometric_graph(n, 0.4, rng.uniform_int(2, 10), rng);
  }
  const auto max_m = n * (n - 1);
  const auto m = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(n),
                      static_cast<std::int64_t>(std::min(max_m, 5 * n))));
  const Weight u = rng.uniform_int(1, 12);
  const bool connected = rng.bernoulli(0.7);
  return make_random_graph(n, m, {1, u}, rng, connected);
}

class SsspFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SsspFuzz, SpikingEqualsDijkstraEqualsCrossbar) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Graph g = random_instance(seed, 24);
  const auto ref = dijkstra(g, 0);

  nga::SpikingSsspOptions opt;
  opt.source = 0;
  opt.record_parents = false;
  const auto spiking = nga::spiking_sssp(g, opt);
  EXPECT_EQ(spiking.dist, ref.dist) << "seed " << seed;

  if (g.num_edges() > 0) {
    bool has_self_loop = false;
    for (const auto& e : g.edges()) has_self_loop |= (e.from == e.to);
    if (!has_self_loop) {
      const auto onx = crossbar::spiking_sssp_on_crossbar(g, 0);
      EXPECT_EQ(onx.dist, ref.dist) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspFuzz, ::testing::Range(0, 40));

class KhopFuzz : public ::testing::TestWithParam<int> {};

TEST_P(KhopFuzz, AllFourKHopImplementationsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0xF033 + seed);
  const Graph g = random_instance(seed, 12);
  if (g.num_edges() == 0) return;
  const auto k = static_cast<std::uint32_t>(rng.uniform_int(1, 6));

  const auto bf = bellman_ford_khop(g, 0, k);

  // (min,+) NGA reference: dist_k = min over rounds of exact-hop walks.
  const auto mp = nga::minplus_rounds(g, 0, k);
  std::vector<Weight> mp_min(g.num_vertices(), kInfiniteDistance);
  for (const auto& round : mp) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      mp_min[v] = std::min(mp_min[v], round[v]);
    }
  }
  EXPECT_EQ(mp_min, bf.dist) << "seed " << seed << " k " << k;

  nga::KHopTtlOptions topt;
  topt.source = 0;
  topt.k = k;
  const auto ttl = nga::khop_sssp_ttl(g, topt);
  EXPECT_EQ(ttl.dist, bf.dist) << "seed " << seed << " k " << k;

  nga::KHopPolyOptions popt;
  popt.source = 0;
  popt.k = k;
  const auto poly = nga::khop_sssp_poly(g, popt);
  EXPECT_EQ(poly.dist, bf.dist) << "seed " << seed << " k " << k;

  // Per-round tables agree with the reference exactly.
  for (std::size_t r = 0; r < poly.per_round.size(); ++r) {
    EXPECT_EQ(poly.per_round[r], mp[r]) << "seed " << seed << " round " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KhopFuzz, ::testing::Range(0, 32));

class ApproxFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ApproxFuzz, GuaranteeAndCompositionHold) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0xF044 + seed);
  const Graph g = random_instance(seed, 20);
  if (g.num_vertices() < 2 || g.num_edges() == 0) return;
  const auto k = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  const auto bf = bellman_ford_khop(g, 0, k);
  const auto dj = dijkstra(g, 0);

  nga::ApproxKHopOptions opt;
  opt.source = 0;
  opt.k = k;
  opt.compose_scales = (seed % 2 == 1);
  const auto a = nga::approx_khop_sssp(g, opt);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (bf.reachable(v)) {
      ASSERT_TRUE(a.reachable(v)) << "seed " << seed << " v " << v;
      EXPECT_LE(a.dist[v],
                (1.0 + a.epsilon) * static_cast<double>(bf.dist[v]) + 1e-9)
          << "seed " << seed << " v " << v;
    }
    if (a.reachable(v)) {
      EXPECT_GE(a.dist[v], static_cast<double>(dj.dist[v]) - 1e-9)
          << "seed " << seed << " v " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxFuzz, ::testing::Range(0, 18));

/// Random mixed SNN for the queue-agreement fuzz: integrators and gates,
/// inhibition, self-loops, and delays spanning the calendar ring window.
snn::Network random_snn(std::uint64_t seed) {
  Rng rng(0xCA1E + seed * 0x9E3779B97F4A7C15ULL);
  snn::Network net;
  const auto n = static_cast<std::size_t>(rng.uniform_int(5, 40));
  for (std::size_t i = 0; i < n; ++i) {
    snn::NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    p.v_reset = static_cast<Voltage>(rng.uniform_int(-1, 0));
    const int mode = static_cast<int>(rng.uniform_int(0, 2));
    p.tau = mode == 0 ? 0.0 : (mode == 1 ? 1.0 : 0.5);
    net.add_neuron(p);
  }
  const auto syn = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(n),
                      static_cast<std::int64_t>(5 * n)));
  for (std::size_t s = 0; s < syn; ++s) {
    const auto a = static_cast<NeuronId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<NeuronId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto w = static_cast<SynWeight>(rng.uniform_int(-2, 3));
    // Occasionally exceed the 64-slot minimum ring window so events take
    // the overflow-spill path.
    const Delay d = rng.bernoulli(0.1) ? rng.uniform_int(64, 300)
                                       : rng.uniform_int(1, 9);
    net.add_synapse(a, b, w, d);
  }
  return net;
}

class QueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QueueFuzz, BothQueuesAndReferenceInterpreterProduceIdenticalRuns) {
  // Three executions of the same random network must agree spike-for-spike:
  // the CSR-compiled simulator under both queue implementations, and the
  // nested-vector ReferenceSimulator running straight off the mutable
  // builder. The last one is what certifies the compile()/CSR packing
  // preserved semantics, not just that the two queues agree with each other.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();

  auto inject_all = [&](auto& sim) {
    Rng rng(0xD41E + seed);
    for (int i = 0; i < 6; ++i) {
      sim.inject_spike(
          static_cast<NeuronId>(rng.uniform_int(
              0, static_cast<std::int64_t>(net.num_neurons()) - 1)),
          rng.uniform_int(0, 200));
    }
    // A far-future injection: exercises the ring going empty mid-run
    // (cursor jump) and, in the calendar, the spill-and-migrate path.
    sim.inject_spike(0, 450);
  };
  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;

  auto drive = [&](snn::QueueKind kind) {
    snn::Simulator sim(compiled, kind);
    inject_all(sim);
    const snn::SimStats stats = sim.run(cfg);
    return std::tuple(stats, sim.spike_log(), sim.first_spikes());
  };

  const auto [cs, clog, cfirst] = drive(snn::QueueKind::kCalendar);
  const auto [ms, mlog, mfirst] = drive(snn::QueueKind::kMap);
  EXPECT_EQ(clog, mlog) << "seed " << seed;
  EXPECT_EQ(cfirst, mfirst) << "seed " << seed;
  EXPECT_EQ(cs.spikes, ms.spikes) << "seed " << seed;
  EXPECT_EQ(cs.deliveries, ms.deliveries) << "seed " << seed;
  EXPECT_EQ(cs.event_times, ms.event_times) << "seed " << seed;
  EXPECT_EQ(cs.end_time, ms.end_time) << "seed " << seed;
  EXPECT_EQ(cs.execution_time, ms.execution_time) << "seed " << seed;
  EXPECT_EQ(cs.hit_time_limit, ms.hit_time_limit) << "seed " << seed;
  EXPECT_EQ(cs.peak_queue_events, ms.peak_queue_events) << "seed " << seed;
  EXPECT_EQ(cs.max_bucket_occupancy, ms.max_bucket_occupancy)
      << "seed " << seed;

  snn::ReferenceSimulator ref(net);
  inject_all(ref);
  const snn::SimStats rs = ref.run(cfg);
  EXPECT_EQ(ref.spike_log(), clog) << "seed " << seed;
  EXPECT_EQ(ref.first_spikes(), cfirst) << "seed " << seed;
  // Semantic stats only: queue-level counters are a property of the
  // production queues and stay 0 in the reference.
  EXPECT_EQ(rs.spikes, cs.spikes) << "seed " << seed;
  EXPECT_EQ(rs.deliveries, cs.deliveries) << "seed " << seed;
  EXPECT_EQ(rs.event_times, cs.event_times) << "seed " << seed;
  EXPECT_EQ(rs.end_time, cs.end_time) << "seed " << seed;
  EXPECT_EQ(rs.execution_time, cs.execution_time) << "seed " << seed;
  EXPECT_EQ(rs.hit_time_limit, cs.hit_time_limit) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFuzz, ::testing::Range(0, 30));

class FanoutFuzz : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(FanoutFuzz, SegmentedKernelMatchesOraclesWithAndWithoutCauses) {
  // The delay-segmented fan-out kernel (ARCHITECTURE.md §1.6) bulk-appends
  // one SoA block per delay run instead of pushing per synapse. This fuzz
  // certifies the rewrite is event-for-event invisible: on random networks
  // the segmented kernel must agree with the kMap oracle, with the retained
  // per-synapse kernel (FanoutKind::kPerSynapse), and with the nested-vector
  // ReferenceSimulator — with record_causes both on and off, since the
  // optional SoA `sources` array only exists in the on case and the cause
  // tie-break reads it entry-by-entry.
  const auto seed = static_cast<std::uint64_t>(std::get<0>(GetParam()));
  const bool causes = std::get<1>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();
  const auto n = static_cast<NeuronId>(net.num_neurons());

  auto inject_all = [&](auto& sim) {
    Rng rng(0xD41E + seed);
    for (int i = 0; i < 6; ++i) {
      sim.inject_spike(
          static_cast<NeuronId>(rng.uniform_int(
              0, static_cast<std::int64_t>(net.num_neurons()) - 1)),
          rng.uniform_int(0, 200));
    }
    sim.inject_spike(0, 450);
  };
  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  cfg.record_causes = causes;

  struct Run {
    snn::SimStats stats;
    std::vector<std::pair<Time, NeuronId>> log;
    std::vector<Time> first;
    std::vector<NeuronId> cause;
    std::vector<Voltage> potential;
  };
  auto drive = [&](snn::QueueKind kind, snn::FanoutKind fanout) {
    snn::Simulator sim(compiled, kind, fanout);
    inject_all(sim);
    Run r;
    r.stats = sim.run(cfg);
    r.log = sim.spike_log();
    r.first = sim.first_spikes();
    for (NeuronId id = 0; id < n; ++id) {
      if (causes) r.cause.push_back(sim.first_spike_cause(id));
      r.potential.push_back(sim.potential(id));
    }
    return r;
  };
  auto expect_same = [&](const Run& a, const Run& b, const char* what) {
    EXPECT_EQ(a.log, b.log) << what << " seed " << seed;
    EXPECT_EQ(a.first, b.first) << what << " seed " << seed;
    EXPECT_EQ(a.cause, b.cause) << what << " seed " << seed;
    EXPECT_EQ(a.potential, b.potential) << what << " seed " << seed;
    EXPECT_EQ(a.stats.spikes, b.stats.spikes) << what << " seed " << seed;
    EXPECT_EQ(a.stats.deliveries, b.stats.deliveries)
        << what << " seed " << seed;
    EXPECT_EQ(a.stats.event_times, b.stats.event_times)
        << what << " seed " << seed;
    EXPECT_EQ(a.stats.end_time, b.stats.end_time) << what << " seed " << seed;
    EXPECT_EQ(a.stats.execution_time, b.stats.execution_time)
        << what << " seed " << seed;
    EXPECT_EQ(a.stats.hit_time_limit, b.stats.hit_time_limit)
        << what << " seed " << seed;
  };

  const Run seg = drive(snn::QueueKind::kCalendar, snn::FanoutKind::kSegmented);
  const Run seg_map = drive(snn::QueueKind::kMap, snn::FanoutKind::kSegmented);
  const Run per_syn =
      drive(snn::QueueKind::kCalendar, snn::FanoutKind::kPerSynapse);
  expect_same(seg, seg_map, "segmented calendar vs map");
  expect_same(seg, per_syn, "segmented vs per-synapse");

  // Kernel counters: both segmented runs walk the same segments and issue
  // the same bulk appends regardless of queue kind; the per-synapse kernel
  // never touches them. Queue-level peaks must also survive bulk appends.
  EXPECT_EQ(seg.stats.fanout_segments, seg_map.stats.fanout_segments)
      << "seed " << seed;
  EXPECT_EQ(seg.stats.bulk_appends, seg_map.stats.bulk_appends)
      << "seed " << seed;
  EXPECT_EQ(per_syn.stats.fanout_segments, 0u) << "seed " << seed;
  EXPECT_EQ(per_syn.stats.bulk_appends, 0u) << "seed " << seed;
  EXPECT_EQ(seg.stats.peak_queue_events, per_syn.stats.peak_queue_events)
      << "seed " << seed;
  EXPECT_EQ(seg.stats.max_bucket_occupancy,
            per_syn.stats.max_bucket_occupancy)
      << "seed " << seed;

  // The reference interpreter refuses record_causes (it never grew the
  // feature); cause recording must not perturb the run, so its causes-off
  // trace is still the right oracle for both cause modes.
  snn::SimConfig ref_cfg = cfg;
  ref_cfg.record_causes = false;
  snn::ReferenceSimulator ref(net);
  inject_all(ref);
  const snn::SimStats rs = ref.run(ref_cfg);
  EXPECT_EQ(ref.spike_log(), seg.log) << "seed " << seed;
  EXPECT_EQ(ref.first_spikes(), seg.first) << "seed " << seed;
  EXPECT_EQ(rs.spikes, seg.stats.spikes) << "seed " << seed;
  EXPECT_EQ(rs.deliveries, seg.stats.deliveries) << "seed " << seed;
  EXPECT_EQ(rs.event_times, seg.stats.event_times) << "seed " << seed;
  EXPECT_EQ(rs.end_time, seg.stats.end_time) << "seed " << seed;
  EXPECT_EQ(rs.execution_time, seg.stats.execution_time) << "seed " << seed;
  EXPECT_EQ(rs.hit_time_limit, seg.stats.hit_time_limit) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(SeedsXCauses, FanoutFuzz,
                         ::testing::Combine(::testing::Range(0, 20),
                                            ::testing::Bool()));

class StorageFuzz
    : public ::testing::TestWithParam<std::tuple<int, snn::FanoutKind>> {};

TEST_P(StorageFuzz, NarrowStorageIsEventForEventInvisible) {
  // Freeze-time width narrowing (ARCHITECTURE.md §1.8) must be a pure
  // storage transformation: the same network frozen wide (the oracle
  // layout) and narrow (kAuto) must produce identical runs under both
  // queue kinds and the given fan-out kernel, and both must agree with the
  // nested-vector ReferenceSimulator that never saw a CSR at all.
  const auto seed = static_cast<std::uint64_t>(std::get<0>(GetParam()));
  const snn::FanoutKind fanout = std::get<1>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork wide = net.compile(snn::StoragePolicy::kWide);
  const snn::CompiledNetwork narrow = net.compile(snn::StoragePolicy::kAuto);

  // random_snn stays within every narrow envelope (n ≤ 40, delays ≤ 300,
  // integer weights), so kAuto must actually have narrowed — otherwise
  // this fuzz silently degenerates into wide-vs-wide.
  ASSERT_FALSE(wide.storage_widths().narrow);
  ASSERT_TRUE(narrow.storage_widths().narrow) << "seed " << seed;
  EXPECT_LT(narrow.csr_storage_bytes(), wide.csr_storage_bytes())
      << "seed " << seed;

  // The generic accessors must read back identical synapse data.
  ASSERT_EQ(narrow.num_synapses(), wide.num_synapses());
  for (std::size_t k = 0; k < wide.num_synapses(); ++k) {
    ASSERT_EQ(narrow.syn_target(k), wide.syn_target(k)) << "syn " << k;
    ASSERT_EQ(narrow.syn_weight(k), wide.syn_weight(k)) << "syn " << k;
    ASSERT_EQ(narrow.syn_delay(k), wide.syn_delay(k)) << "syn " << k;
  }

  auto inject_all = [&](auto& sim) {
    Rng rng(0xD41E + seed);
    for (int i = 0; i < 6; ++i) {
      sim.inject_spike(
          static_cast<NeuronId>(rng.uniform_int(
              0, static_cast<std::int64_t>(net.num_neurons()) - 1)),
          rng.uniform_int(0, 200));
    }
    sim.inject_spike(0, 450);
  };
  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;
  cfg.record_causes = true;

  auto drive = [&](const snn::CompiledNetwork& compiled,
                   snn::QueueKind kind) {
    snn::Simulator sim(compiled, kind, fanout);
    inject_all(sim);
    const snn::SimStats stats = sim.run(cfg);
    std::vector<NeuronId> causes;
    for (NeuronId id = 0; id < net.num_neurons(); ++id) {
      causes.push_back(sim.first_spike_cause(id));
    }
    return std::tuple(stats, sim.spike_log(), sim.first_spikes(), causes);
  };

  for (const auto queue : {snn::QueueKind::kCalendar, snn::QueueKind::kMap}) {
    const auto [ws, wlog, wfirst, wcause] = drive(wide, queue);
    const auto [ns, nlog, nfirst, ncause] = drive(narrow, queue);
    EXPECT_EQ(nlog, wlog) << "seed " << seed;
    EXPECT_EQ(nfirst, wfirst) << "seed " << seed;
    EXPECT_EQ(ncause, wcause) << "seed " << seed;
    EXPECT_EQ(ns.spikes, ws.spikes) << "seed " << seed;
    EXPECT_EQ(ns.deliveries, ws.deliveries) << "seed " << seed;
    EXPECT_EQ(ns.event_times, ws.event_times) << "seed " << seed;
    EXPECT_EQ(ns.end_time, ws.end_time) << "seed " << seed;
    EXPECT_EQ(ns.execution_time, ws.execution_time) << "seed " << seed;
    EXPECT_EQ(ns.hit_time_limit, ws.hit_time_limit) << "seed " << seed;
    EXPECT_EQ(ns.fanout_segments, ws.fanout_segments) << "seed " << seed;
    EXPECT_EQ(ns.bulk_appends, ws.bulk_appends) << "seed " << seed;
    EXPECT_EQ(ns.peak_queue_events, ws.peak_queue_events) << "seed " << seed;

    // Cross-check against the pre-CSR execution model as well.
    snn::SimConfig ref_cfg = cfg;
    ref_cfg.record_causes = false;
    snn::ReferenceSimulator ref(net);
    inject_all(ref);
    ref.run(ref_cfg);
    EXPECT_EQ(ref.spike_log(), nlog) << "seed " << seed;
    EXPECT_EQ(ref.first_spikes(), nfirst) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsXFanout, StorageFuzz,
    ::testing::Combine(::testing::Range(0, 14),
                       ::testing::Values(snn::FanoutKind::kSegmented,
                                         snn::FanoutKind::kPerSynapse)));

TEST(StorageFuzzRegression, InexactWeightKeepsDoublePayload) {
  // One weight that does not survive a double→float round trip must keep
  // the whole weight column at f64 — narrowing may never perturb a single
  // accumulated potential — while targets and delays still narrow.
  snn::Network net;
  for (int i = 0; i < 4; ++i) net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  net.add_synapse(0, 1, 0.1, 1);  // 0.1 is inexact in binary32
  net.add_synapse(1, 2, 1.0, 2);
  net.add_synapse(2, 3, 0.1, 3);
  const snn::CompiledNetwork narrow = net.compile();
  ASSERT_TRUE(narrow.storage_widths().narrow);
  EXPECT_EQ(narrow.storage_widths().weight_bytes, 8u);
  EXPECT_EQ(narrow.storage_widths().target_bytes, 2u);
  EXPECT_EQ(narrow.storage_widths().delay_bytes, 1u);
  for (std::size_t k = 0; k < narrow.num_synapses(); ++k) {
    EXPECT_EQ(narrow.syn_weight(k), net.compile(snn::StoragePolicy::kWide)
                                        .syn_weight(k));
  }
}

class ProbeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ProbeFuzz, ProbesObserveWithoutPerturbing) {
  // The obs::Probe overhead contract (docs/OBSERVABILITY.md): attaching a
  // probe must not change ANY simulation observable, and what the probe
  // records must agree with the simulator's own log — across both queue
  // kinds and with the nested-vector reference interpreter.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::Network net = random_snn(seed);
  const snn::CompiledNetwork compiled = net.compile();

  auto inject_all = [&](auto& sim) {
    Rng rng(0xD41E + seed);
    for (int i = 0; i < 6; ++i) {
      sim.inject_spike(
          static_cast<NeuronId>(rng.uniform_int(
              0, static_cast<std::int64_t>(net.num_neurons()) - 1)),
          rng.uniform_int(0, 200));
    }
    sim.inject_spike(0, 450);
  };
  snn::SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;

  obs::ProbeOptions po;
  po.trace_spikes = true;
  po.count_fires = true;
  po.count_deliveries = true;
  po.sample_potentials = {0, static_cast<NeuronId>(net.num_neurons() - 1)};

  auto drive = [&](snn::QueueKind kind, obs::Probe* probe) {
    snn::Simulator sim(compiled, kind);
    if (probe != nullptr) sim.attach_probe(*probe);
    inject_all(sim);
    const snn::SimStats stats = sim.run(cfg);
    return std::tuple(stats, sim.spike_log());
  };

  // Instrumented vs uninstrumented: identical run, event for event.
  obs::Probe cal_probe(po);
  const auto [bare_stats, bare_log] =
      drive(snn::QueueKind::kCalendar, nullptr);
  const auto [cal_stats, cal_log] =
      drive(snn::QueueKind::kCalendar, &cal_probe);
  EXPECT_EQ(cal_log, bare_log) << "seed " << seed;
  EXPECT_EQ(cal_stats.spikes, bare_stats.spikes) << "seed " << seed;
  EXPECT_EQ(cal_stats.deliveries, bare_stats.deliveries) << "seed " << seed;
  EXPECT_EQ(cal_stats.event_times, bare_stats.event_times) << "seed " << seed;
  EXPECT_EQ(cal_stats.end_time, bare_stats.end_time) << "seed " << seed;
  EXPECT_EQ(cal_stats.execution_time, bare_stats.execution_time)
      << "seed " << seed;

  // The probe's trace is exactly the simulator's own (watch-all) log, and
  // its totals are the SimStats totals.
  EXPECT_EQ(cal_probe.spike_trace(), cal_log) << "seed " << seed;
  EXPECT_EQ(cal_probe.total_fires(), cal_stats.spikes) << "seed " << seed;
  EXPECT_EQ(cal_probe.total_deliveries(), cal_stats.deliveries)
      << "seed " << seed;

  // Same observations under the map queue.
  obs::Probe map_probe(po);
  drive(snn::QueueKind::kMap, &map_probe);
  EXPECT_EQ(map_probe.spike_trace(), cal_probe.spike_trace())
      << "seed " << seed;
  EXPECT_EQ(map_probe.fire_counts(), cal_probe.fire_counts())
      << "seed " << seed;
  EXPECT_EQ(map_probe.delivery_counts(), cal_probe.delivery_counts())
      << "seed " << seed;
  EXPECT_EQ(map_probe.potential_samples(), cal_probe.potential_samples())
      << "seed " << seed;

  // Per-neuron fire counts equal the ReferenceSimulator's spike log counted
  // by hand — the probe agrees with the pre-CSR execution model too.
  snn::ReferenceSimulator ref(net);
  inject_all(ref);
  ref.run(cfg);
  std::vector<std::uint64_t> ref_fires(net.num_neurons(), 0);
  for (const auto& [t, id] : ref.spike_log()) ++ref_fires[id];
  EXPECT_EQ(cal_probe.fire_counts(), ref_fires) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeFuzz, ::testing::Range(0, 12));

class BatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BatchFuzz, BatchDriverMatchesSingleSourceRuns) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0xBA7C + seed);
  const Graph g = random_instance(seed, 18);

  std::vector<VertexId> sources;
  const auto want = static_cast<std::size_t>(rng.uniform_int(1, 5));
  while (sources.size() < want) {
    sources.push_back(static_cast<VertexId>(rng.uniform_int(
        0, static_cast<std::int64_t>(g.num_vertices()) - 1)));
  }

  nga::SsspBatchOptions bopt;
  bopt.record_parents = true;
  bopt.num_threads = static_cast<std::size_t>(rng.uniform_int(1, 3));
  const auto batch = nga::spiking_sssp_batch(g, sources, bopt);
  ASSERT_EQ(batch.runs.size(), sources.size());

  for (std::size_t i = 0; i < sources.size(); ++i) {
    nga::SpikingSsspOptions sopt;
    sopt.source = sources[i];
    sopt.record_parents = true;
    const auto single = nga::spiking_sssp(g, sopt);
    const auto& run = batch.runs[i];
    EXPECT_EQ(run.source, sources[i]);
    EXPECT_EQ(run.dist, single.dist) << "seed " << seed << " source " << i;
    EXPECT_EQ(run.parent, single.parent)
        << "seed " << seed << " source " << i;
    EXPECT_EQ(run.execution_time, single.execution_time)
        << "seed " << seed << " source " << i;
    EXPECT_EQ(run.dist, dijkstra(g, sources[i]).dist)
        << "seed " << seed << " source " << i;
  }
  EXPECT_GE(batch.threads_used, 1u);
  EXPECT_GT(batch.neurons, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchFuzz, ::testing::Range(0, 16));

TEST(BatchRegression, MoreThreadsThanSourcesIsClampedAndCorrect) {
  // Regression for the worker-pool clamp: with more requested threads than
  // sources, surplus workers must neither crash (index races past the end)
  // nor change results; threads_used reports the clamped pool size.
  Rng rng(0xBA7C);
  const Graph g = random_instance(3, 18);
  const std::vector<VertexId> sources = {0, 1, 2};

  nga::SsspBatchOptions bopt;
  bopt.num_threads = 16;  // requested >> |sources|
  const auto batch = nga::spiking_sssp_batch(g, sources, bopt);
  ASSERT_EQ(batch.runs.size(), sources.size());
  EXPECT_EQ(batch.threads_used, sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(batch.runs[i].dist, dijkstra(g, sources[i]).dist)
        << "source " << i;
  }
}

TEST(BatchRegression, SingleSourceManyThreads) {
  // The degenerate 1-source sweep: exactly one worker may claim the index;
  // the pool must still clamp to 1 and the others' lazy simulators must
  // never be constructed (exercised by the std::optional deferral path).
  Rng rng(0xBA7D);
  const Graph g = random_instance(7, 18);
  const std::vector<VertexId> sources = {0};

  nga::SsspBatchOptions bopt;
  bopt.num_threads = 8;
  obs::MetricsRegistry reg;
  bopt.metrics = &reg;
  const auto batch = nga::spiking_sssp_batch(g, sources, bopt);
  ASSERT_EQ(batch.runs.size(), 1u);
  EXPECT_EQ(batch.threads_used, 1u);
  EXPECT_EQ(batch.runs[0].dist, dijkstra(g, 0).dist);

  // Merged metrics account for exactly the one source and one worker.
  EXPECT_EQ(reg.counter("batch.sources_done"), 1u);
  EXPECT_EQ(reg.counter("batch.sources"), 1u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("batch.workers"), 1.0);
  EXPECT_EQ(reg.counter("sim.runs"), 1u);
}

TEST(BatchRegression, MergedMetricsMatchRunTotals) {
  // The per-worker registries merged at join must add up to exactly the
  // per-run SimStats sums — nothing lost or double-counted across threads.
  Rng rng(0xBA7E);
  const Graph g = random_instance(11, 18);
  std::vector<VertexId> sources;
  const auto want =
      static_cast<VertexId>(std::min<std::size_t>(6, g.num_vertices()));
  for (VertexId v = 0; v < want; ++v) sources.push_back(v);

  nga::SsspBatchOptions bopt;
  bopt.num_threads = 3;
  obs::MetricsRegistry reg;
  bopt.metrics = &reg;
  const auto batch = nga::spiking_sssp_batch(g, sources, bopt);

  std::uint64_t spikes = 0, deliveries = 0;
  for (const auto& run : batch.runs) {
    spikes += run.sim.spikes;
    deliveries += run.sim.deliveries;
  }
  EXPECT_EQ(reg.counter("sim.spikes"), spikes);
  EXPECT_EQ(reg.counter("sim.deliveries"), deliveries);
  EXPECT_EQ(reg.counter("sim.runs"), sources.size());
  EXPECT_EQ(reg.counter("batch.sources_done"), sources.size());
  EXPECT_EQ(reg.timers().at("sim.run_ns").count, sources.size());
}

}  // namespace
}  // namespace sga
