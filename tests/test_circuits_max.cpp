// Property tests for the Section-5 max/min circuits (Theorems 5.1, 5.2):
// correctness vs std::max/min over random and adversarial inputs, the
// Table-2 size/depth profiles, winner semantics, pipelining, and the
// all-zero-neutral behaviour the NGA compilations rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "circuits/harness.h"
#include "circuits/max_circuits.h"
#include "core/bitops.h"
#include "core/random.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::circuits {
namespace {

using snn::Network;
using snn::Simulator;

struct MaxParam {
  MaxKind kind;
  bool compute_min;
  int d;
  int lambda;
};

std::string param_name(const ::testing::TestParamInfo<MaxParam>& info) {
  const auto& p = info.param;
  std::string s = p.kind == MaxKind::kWiredOr ? "WiredOr" : "BruteForce";
  s += p.compute_min ? "Min" : "Max";
  s += "_d" + std::to_string(p.d) + "_l" + std::to_string(p.lambda);
  return s;
}

class MaxCircuitSweep : public ::testing::TestWithParam<MaxParam> {
 protected:
  MaxCircuit build(Network& net) const {
    CircuitBuilder cb(net);
    const auto& p = GetParam();
    return p.compute_min ? build_min(cb, p.d, p.lambda, p.kind)
                         : build_max(cb, p.d, p.lambda, p.kind);
  }

  std::uint64_t reference(const std::vector<std::uint64_t>& vals) const {
    return GetParam().compute_min
               ? *std::min_element(vals.begin(), vals.end())
               : *std::max_element(vals.begin(), vals.end());
  }
};

TEST_P(MaxCircuitSweep, MatchesReferenceOnRandomInputs) {
  const auto& p = GetParam();
  Rng rng(0xC0FFEE ^ (static_cast<std::uint64_t>(p.d) << 8) ^
          static_cast<std::uint64_t>(p.lambda));
  for (int trial = 0; trial < 12; ++trial) {
    Network net;
    const MaxCircuit c = build(net);
    std::vector<std::uint64_t> vals(static_cast<std::size_t>(p.d));
    for (auto& v : vals) {
      v = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mask_bits(p.lambda))));
    }
    EXPECT_EQ(eval_max_circuit(net, c, vals), reference(vals))
        << "trial " << trial;
  }
}

TEST_P(MaxCircuitSweep, HandlesTiesAndExtremes) {
  const auto& p = GetParam();
  const std::uint64_t top = mask_bits(p.lambda);
  const std::vector<std::vector<std::uint64_t>> cases = {
      std::vector<std::uint64_t>(static_cast<std::size_t>(p.d), 0),
      std::vector<std::uint64_t>(static_cast<std::size_t>(p.d), top),
      std::vector<std::uint64_t>(static_cast<std::size_t>(p.d), top / 2),
  };
  for (const auto& vals : cases) {
    Network net;
    const MaxCircuit c = build(net);
    EXPECT_EQ(eval_max_circuit(net, c, vals), reference(vals));
  }
}

TEST_P(MaxCircuitSweep, PipelinedPresentationsAreIndependent) {
  const auto& p = GetParam();
  Rng rng(0xBEEF ^ static_cast<std::uint64_t>(p.d * 131 + p.lambda));
  Network net;
  const MaxCircuit c = build(net);
  std::vector<std::vector<std::uint64_t>> rounds;
  for (int r = 0; r < 5; ++r) {
    std::vector<std::uint64_t> vals(static_cast<std::size_t>(p.d));
    for (auto& v : vals) {
      v = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mask_bits(p.lambda))));
    }
    rounds.push_back(std::move(vals));
  }
  const auto results = eval_max_circuit_pipelined(net, c, rounds);
  ASSERT_EQ(results.size(), rounds.size());
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(results[r], reference(rounds[r])) << "round " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaxCircuitSweep,
    ::testing::Values(
        MaxParam{MaxKind::kWiredOr, false, 1, 3},
        MaxParam{MaxKind::kWiredOr, false, 2, 1},
        MaxParam{MaxKind::kWiredOr, false, 2, 4},
        MaxParam{MaxKind::kWiredOr, false, 5, 6},
        MaxParam{MaxKind::kWiredOr, false, 9, 8},
        MaxParam{MaxKind::kWiredOr, true, 2, 4},
        MaxParam{MaxKind::kWiredOr, true, 5, 6},
        MaxParam{MaxKind::kWiredOr, true, 9, 8},
        MaxParam{MaxKind::kBruteForce, false, 1, 3},
        MaxParam{MaxKind::kBruteForce, false, 2, 1},
        MaxParam{MaxKind::kBruteForce, false, 2, 4},
        MaxParam{MaxKind::kBruteForce, false, 5, 6},
        MaxParam{MaxKind::kBruteForce, false, 9, 8},
        MaxParam{MaxKind::kBruteForce, true, 2, 4},
        MaxParam{MaxKind::kBruteForce, true, 5, 6},
        MaxParam{MaxKind::kBruteForce, true, 9, 8}),
    param_name);

TEST(MaxWiredOr, ExhaustiveTwoInputsFourBits) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      Network net;
      CircuitBuilder cb(net);
      const MaxCircuit c = build_max_wired_or(cb, 2, 4);
      EXPECT_EQ(eval_max_circuit(net, c, {a, b}), std::max(a, b))
          << a << " vs " << b;
    }
  }
}

TEST(MaxBruteForce, ExhaustiveTwoInputsFourBits) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      Network net;
      CircuitBuilder cb(net);
      const MaxCircuit c = build_max_brute_force(cb, 2, 4);
      EXPECT_EQ(eval_max_circuit(net, c, {a, b}), std::max(a, b))
          << a << " vs " << b;
    }
  }
}

TEST(MaxBruteForce, WinnerIsSmallestIndexOnTies) {
  Network net;
  CircuitBuilder cb(net);
  const MaxCircuit c = build_max_brute_force(cb, 4, 4);
  Simulator sim(net);
  sim.inject_spike(c.enable, 0);
  const std::vector<std::uint64_t> vals{3, 9, 9, 1};
  for (std::size_t i = 0; i < vals.size(); ++i) {
    snn::inject_binary(sim, c.inputs[i], vals[i], 0);
  }
  snn::SimConfig cfg;
  cfg.max_time = c.depth;
  sim.run(cfg);
  EXPECT_FALSE(sim.fired_at(c.winners[0], c.winner_level));
  EXPECT_TRUE(sim.fired_at(c.winners[1], c.winner_level));  // first of the tie
  EXPECT_FALSE(sim.fired_at(c.winners[2], c.winner_level));
  EXPECT_FALSE(sim.fired_at(c.winners[3], c.winner_level));
}

TEST(MaxWiredOr, AllTiedWinnersMarked) {
  Network net;
  CircuitBuilder cb(net);
  const MaxCircuit c = build_max_wired_or(cb, 3, 4);
  Simulator sim(net);
  sim.inject_spike(c.enable, 0);
  const std::vector<std::uint64_t> vals{7, 2, 7};
  for (std::size_t i = 0; i < vals.size(); ++i) {
    snn::inject_binary(sim, c.inputs[i], vals[i], 0);
  }
  snn::SimConfig cfg;
  cfg.max_time = c.depth;
  sim.run(cfg);
  EXPECT_TRUE(sim.fired_at(c.winners[0], c.winner_level));
  EXPECT_FALSE(sim.fired_at(c.winners[1], c.winner_level));
  EXPECT_TRUE(sim.fired_at(c.winners[2], c.winner_level));
}

TEST(MaxCircuits, AllZeroInputsAreNeutralForMax) {
  // The polynomial k-hop compilation relies on absent (all-zero) messages
  // never beating a real message in the MAX.
  for (const MaxKind kind : {MaxKind::kWiredOr, MaxKind::kBruteForce}) {
    Network net;
    CircuitBuilder cb(net);
    const MaxCircuit c = build_max(cb, 3, 5, kind);
    EXPECT_EQ(eval_max_circuit(net, c, {0, 13, 0}), 13u);
  }
}

TEST(MaxCircuits, Table2SizeProfiles) {
  // Theorem 5.1: O(dλ) neurons, O(λ) depth. Exact counts for our layout:
  // neurons = 1 + dλ (inputs+enable) + λ(3d + 1) (stages) + dλ (filter)
  //           + λ (merge).
  {
    Network net;
    CircuitBuilder cb(net);
    const MaxCircuit c = build_max_wired_or(cb, 8, 6);
    EXPECT_EQ(c.depth, 4 * 6 + 2);
    const std::size_t expected =
        1 + 8 * 6 + 6 * (3 * 8 + 1) + 8 * 6 + 6;
    EXPECT_EQ(c.stats.neurons, expected);
    EXPECT_LE(c.stats.max_abs_weight, 1.0);  // small weights
  }
  // Theorem 5.2: O(d²) comparisons, constant depth, weights up to 2^{λ-1}.
  {
    Network net;
    CircuitBuilder cb(net);
    const MaxCircuit c = build_max_brute_force(cb, 8, 6);
    EXPECT_EQ(c.depth, 5);
    const std::size_t expected = 1 + 8 * 6 + 8 * 7 + 8 + 8 * 6 + 6;
    EXPECT_EQ(c.stats.neurons, expected);
    EXPECT_DOUBLE_EQ(c.stats.max_abs_weight, 32.0);  // 2^{λ-1}
  }
}

TEST(MaxCircuits, GrowthIsLinearInDForWiredOrQuadraticForBruteForce) {
  auto neurons = [](MaxKind kind, int d) {
    Network net;
    CircuitBuilder cb(net);
    return build_max(cb, d, 8, kind).stats.neurons;
  };
  // Doubling d roughly doubles wired-OR size but ~quadruples the pairwise
  // comparison count of the brute-force circuit.
  const double wo_ratio = static_cast<double>(neurons(MaxKind::kWiredOr, 32)) /
                          static_cast<double>(neurons(MaxKind::kWiredOr, 16));
  EXPECT_NEAR(wo_ratio, 2.0, 0.2);
  const auto bf16 = neurons(MaxKind::kBruteForce, 16);
  const auto bf32 = neurons(MaxKind::kBruteForce, 32);
  EXPECT_GT(static_cast<double>(bf32) / static_cast<double>(bf16), 2.8);
}

}  // namespace
}  // namespace sga::circuits
