// Tests for the pseudopolynomial spiking SSSP algorithm (Section 3):
// distances and predecessors match Dijkstra on every generator family,
// execution time equals L, fire-once behaviour, termination modes, and the
// Theorem 4.1 cost accounting.
#include <gtest/gtest.h>

#include "core/random.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "nga/sssp_event.h"
#include "snn/simulator.h"

namespace sga::nga {
namespace {

void expect_matches_dijkstra(const Graph& g, VertexId source) {
  const auto ref = dijkstra(g, source);
  SpikingSsspOptions opt;
  opt.source = source;
  const auto got = spiking_sssp(g, opt);
  ASSERT_EQ(got.dist.size(), ref.dist.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(got.dist[v], ref.dist[v]) << "vertex " << v;
  }
  // Parents: not necessarily identical to Dijkstra's (ties), but must form
  // shortest paths: dist[parent] + ℓ(parent→v) == dist[v].
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == source || !got.reachable(v)) continue;
    const VertexId p = got.parent[v];
    ASSERT_NE(p, kNoVertex) << "vertex " << v;
    Weight best = kInfiniteDistance;
    for (const EdgeId eid : g.out_edges(p)) {
      if (g.edge(eid).to == v) best = std::min(best, g.edge(eid).length);
    }
    EXPECT_EQ(got.dist[p] + best, got.dist[v]) << "vertex " << v;
  }
}

struct GenCase {
  const char* name;
  Graph graph;
};

class SpikingSsspFamilies : public ::testing::TestWithParam<int> {};

TEST_P(SpikingSsspFamilies, MatchesDijkstra) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  switch (GetParam() % 5) {
    case 0:
      expect_matches_dijkstra(make_random_graph(40, 160, {1, 12}, rng), 0);
      break;
    case 1:
      expect_matches_dijkstra(make_grid_graph(6, 7, {1, 9}, rng), 0);
      break;
    case 2:
      expect_matches_dijkstra(make_path_graph(30, {1, 20}, rng), 0);
      break;
    case 3:
      expect_matches_dijkstra(make_complete_graph(12, {1, 15}, rng), 0);
      break;
    case 4:
      expect_matches_dijkstra(make_preferential_attachment(30, 2, {1, 8}, rng),
                              0);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpikingSsspFamilies, ::testing::Range(0, 15));

TEST(SpikingSssp, ExecutionTimeEqualsEccentricity) {
  // Theorem 4.1's L: all-destinations mode runs for exactly max_v dist(v).
  Rng rng(101);
  const Graph g = make_random_graph(30, 120, {1, 10}, rng);
  const auto ref = dijkstra(g, 0);
  Weight ecc = 0;
  for (VertexId v = 0; v < 30; ++v) {
    if (ref.reachable(v)) ecc = std::max(ecc, ref.dist[v]);
  }
  SpikingSsspOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp(g, opt);
  EXPECT_EQ(got.execution_time, ecc);
}

TEST(SpikingSssp, TargetModeStopsAtTargetDistance) {
  Rng rng(102);
  const Graph g = make_random_graph(30, 120, {1, 10}, rng);
  const auto ref = dijkstra(g, 0);
  SpikingSsspOptions opt;
  opt.source = 0;
  opt.target = 17;
  const auto got = spiking_sssp(g, opt);
  EXPECT_TRUE(got.sim.hit_terminal);
  EXPECT_EQ(got.execution_time, ref.dist[17]);  // Definition 3's T
  EXPECT_EQ(got.dist[17], ref.dist[17]);
}

TEST(SpikingSssp, EachNeuronFiresAtMostOnce) {
  // The fire-once construction: n spikes total for a connected graph (one
  // per vertex), despite arbitrarily many arriving spikes.
  Rng rng(103);
  const Graph g = make_complete_graph(15, {1, 5}, rng);
  SpikingSsspOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp(g, opt);
  EXPECT_EQ(got.sim.spikes, 15u);
}

TEST(SpikingSssp, UnreachableVerticesStaySilent) {
  Graph g(4);
  g.add_edge(0, 1, 3);
  g.add_edge(2, 3, 1);  // island
  SpikingSsspOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp(g, opt);
  EXPECT_EQ(got.dist[1], 3);
  EXPECT_FALSE(got.reachable(2));
  EXPECT_FALSE(got.reachable(3));
}

TEST(SpikingSssp, ParallelEdgesUseShortest) {
  Graph g(2);
  g.add_edge(0, 1, 9);
  g.add_edge(0, 1, 4);
  SpikingSsspOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp(g, opt);
  EXPECT_EQ(got.dist[1], 4);
}

TEST(SpikingSssp, ExtractedPathsAreValidWitnesses) {
  Rng rng(104);
  const Graph g = make_random_graph(25, 100, {1, 7}, rng);
  SpikingSsspOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp(g, opt);
  for (VertexId v = 1; v < 25; ++v) {
    if (!got.reachable(v)) continue;
    std::vector<VertexId> path{v};
    while (path.back() != 0) {
      path.push_back(got.parent[path.back()]);
      ASSERT_LE(path.size(), 26u) << "parent cycle at " << v;
    }
    std::reverse(path.begin(), path.end());
    EXPECT_TRUE(is_shortest_path_witness(g, path, 0, v, got.dist[v]))
        << "vertex " << v;
  }
}

TEST(SpikingSssp, NetworkSizeIsLinear) {
  Rng rng(105);
  const Graph g = make_random_graph(50, 200, {1, 5}, rng);
  SpikingSsspOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp(g, opt);
  EXPECT_EQ(got.neurons, 50u);            // one relay per vertex
  EXPECT_EQ(got.synapses, 200u + 50u);    // edges + fire-once self-loops
}

TEST(SpikingSssp, CyclesDoNotEchoSpikes) {
  Rng rng(106);
  const Graph g = make_cycle_graph(10, {2, 6}, rng);
  SpikingSsspOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp(g, opt);
  EXPECT_EQ(got.sim.spikes, 10u);  // the ring does not keep circulating
  const auto ref = dijkstra(g, 0);
  EXPECT_EQ(got.dist, ref.dist);
}

TEST(SpikingSssp, MultiDestinationStopsWhenAllTargetsReached) {
  // Table 1's caption: the algorithms generalize to multiple destinations —
  // terminate when every listed target has received its spike.
  Rng rng(108);
  const Graph g = make_random_graph(30, 120, {1, 10}, rng);
  const auto ref = dijkstra(g, 0);
  SpikingSsspOptions opt;
  opt.source = 0;
  opt.targets = {5, 11, 23};
  const auto got = spiking_sssp(g, opt);
  EXPECT_TRUE(got.sim.hit_terminal);
  const Weight expected = std::max({ref.dist[5], ref.dist[11], ref.dist[23]});
  EXPECT_EQ(got.execution_time, expected);
  for (const VertexId v : {5u, 11u, 23u}) {
    EXPECT_EQ(got.dist[v], ref.dist[v]);
  }
}

TEST(SpikingSssp, TargetAndTargetsAreMutuallyExclusive) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  SpikingSsspOptions opt;
  opt.source = 0;
  opt.target = 1;
  opt.targets = {2};
  EXPECT_THROW(spiking_sssp(g, opt), InvalidArgument);
}

TEST(SpikingSssp, UnreachableTargetInSetFallsBackToQuiescence) {
  Graph g(3);
  g.add_edge(0, 1, 4);  // vertex 2 is unreachable
  SpikingSsspOptions opt;
  opt.source = 0;
  opt.targets = {1, 2};
  const auto got = spiking_sssp(g, opt);
  EXPECT_FALSE(got.sim.hit_terminal);  // never satisfied
  EXPECT_EQ(got.dist[1], 4);
  EXPECT_FALSE(got.reachable(2));
}

TEST(SpikingSssp, MaxTimeTruncatesSearch) {
  Rng rng(107);
  const Graph g = make_path_graph(10, {5, 5}, rng);
  SpikingSsspOptions opt;
  opt.source = 0;
  opt.max_time = 12;  // distance to vertex v is 5v
  const auto got = spiking_sssp(g, opt);
  EXPECT_EQ(got.dist[2], 10);
  EXPECT_FALSE(got.reachable(3));  // 15 > 12
}

}  // namespace
}  // namespace sga::nga
