// Tests for gate-level path construction: the Section-3 predecessor capture
// (flags + ID latch banks) and the Section-4.3 winner-based path extraction
// of the polynomial k-hop algorithm, plus the composed-scales variant of
// the Section-7 approximation.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/random.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/properties.h"
#include "nga/approx.h"
#include "nga/matvec.h"
#include "nga/khop_poly.h"
#include "nga/path_readout.h"

namespace sga::nga {
namespace {

class PathReadoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(PathReadoutSweep, FlagsGiveValidShortestPathTrees) {
  Rng rng(0x9A7 + static_cast<std::uint64_t>(GetParam()));
  const Graph g = make_random_graph(20, 70, {1, 9}, rng);
  const auto ref = dijkstra(g, 0);
  SpikingSsspPathOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp_with_paths(g, opt);

  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_EQ(got.dist[v], ref.dist[v]) << "vertex " << v;
    if (v == 0 || !got.reachable(v)) continue;
    const VertexId p = got.parent[v];
    ASSERT_NE(p, kNoVertex);
    // The captured predecessor lies on a shortest path.
    Weight best = kInfiniteDistance;
    for (const EdgeId eid : g.out_edges(p)) {
      if (g.edge(eid).to == v) best = std::min(best, g.edge(eid).length);
    }
    EXPECT_EQ(got.dist[p] + best, got.dist[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathReadoutSweep, ::testing::Range(0, 8));

TEST(PathReadout, LatchBanksHoldPredecessorIds) {
  // Unique-weight path graph: no ties, so the broadcast-ID banks must hold
  // exactly the flag-decoded parent.
  Rng rng(0x9B0);
  const Graph g = make_path_graph(9, {3, 3}, rng);
  SpikingSsspPathOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp_with_paths(g, opt);
  for (VertexId v = 1; v < 9; ++v) {
    EXPECT_EQ(got.parent[v], v - 1);
    EXPECT_TRUE(got.latched_valid[v]);
    EXPECT_EQ(got.latched_id[v], v - 1u) << "vertex " << v;
  }
  EXPECT_FALSE(got.latched_valid[0] && got.parent[0] != kNoVertex);
}

TEST(PathReadout, WorksWithoutIdLatches) {
  Rng rng(0x9B1);
  const Graph g = make_random_graph(15, 50, {1, 6}, rng);
  SpikingSsspPathOptions with, without;
  with.source = without.source = 0;
  without.build_id_latches = false;
  const auto a = spiking_sssp_with_paths(g, with);
  const auto b = spiking_sssp_with_paths(g, without);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_GT(a.neurons, b.neurons);  // the n·⌈log n⌉ latch cost
}

TEST(PathReadout, UnreachableVerticesHaveNoParent) {
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(2, 3, 2);
  SpikingSsspPathOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp_with_paths(g, opt);
  EXPECT_EQ(got.parent[1], 0u);
  EXPECT_EQ(got.parent[2], kNoVertex);
  EXPECT_EQ(got.parent[3], kNoVertex);
  EXPECT_FALSE(got.latched_valid[3]);
}

TEST(PathReadout, TiesCaptureSomeValidPredecessor) {
  // Two equal-length routes into vertex 3: either predecessor is valid.
  Graph g(4);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 2, 2);
  g.add_edge(1, 3, 2);
  g.add_edge(2, 3, 2);
  SpikingSsspPathOptions opt;
  opt.source = 0;
  const auto got = spiking_sssp_with_paths(g, opt);
  EXPECT_EQ(got.dist[3], 4);
  EXPECT_TRUE(got.parent[3] == 1 || got.parent[3] == 2);
}

class KhopPathSweep : public ::testing::TestWithParam<int> {};

TEST_P(KhopPathSweep, ExtractedPathsAreValidKHopWitnesses) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0x9C0 + seed);
  const Graph g = make_random_graph(14, 50, {1, 7}, rng);
  const std::uint32_t k = 2 + static_cast<std::uint32_t>(seed % 4);
  KHopPolyOptions opt;
  opt.source = 0;
  opt.k = k;
  const auto got = khop_sssp_poly(g, opt);
  const auto ref = bellman_ford_khop(g, 0, k);

  for (VertexId v = 1; v < 14; ++v) {
    if (!got.reachable(v)) continue;
    const auto path = extract_khop_path(got, 0, v);
    // Valid path, within the hop budget, of exactly the k-hop distance.
    EXPECT_LE(path.size() - 1, static_cast<std::size_t>(k)) << "vertex " << v;
    EXPECT_TRUE(is_shortest_path_witness(g, path, 0, v, ref.dist[v]))
        << "vertex " << v << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KhopPathSweep, ::testing::Range(0, 8));

TEST(KhopPath, HopConstraintShapesThePath) {
  // Cheap long route (3 hops) vs expensive direct edge: with k = 1 the path
  // must be the direct edge; with k = 3 the cheap route.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(2, 3, 1);
  g.add_edge(0, 3, 10);
  {
    KHopPolyOptions opt;
    opt.source = 0;
    opt.k = 1;
    const auto r = khop_sssp_poly(g, opt);
    EXPECT_EQ(extract_khop_path(r, 0, 3), (std::vector<VertexId>{0, 3}));
  }
  {
    KHopPolyOptions opt;
    opt.source = 0;
    opt.k = 3;
    const auto r = khop_sssp_poly(g, opt);
    EXPECT_EQ(extract_khop_path(r, 0, 3),
              (std::vector<VertexId>{0, 1, 2, 3}));
  }
}

TEST(KhopPath, ExtractRejectsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 1;
  const auto r = khop_sssp_poly(g, opt);
  EXPECT_THROW(extract_khop_path(r, 0, 2), InvalidArgument);
}

TEST(KhopMemory, InNetworkBanksMatchProbeDecodedParents) {
  // Section 4.3's O(k)-factor storage end to end: the clock-strobed latch
  // banks must hold the same parents the probe decodes — wherever the
  // round's winner was unique (tied winners OR their slot bits in-network).
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(0x43A + seed);
    const Graph g = make_random_graph(10, 30, {1, 7}, rng);
    KHopPolyOptions opt;
    opt.source = 0;
    opt.k = 4;
    opt.in_network_parent_memory = true;
    const auto got = khop_sssp_poly(g, opt);
    ASSERT_EQ(got.memory_parent.size(), got.parent_per_round.size());

    // Identify ties from the reference per-round tables.
    const auto mp = minplus_rounds(g, 0, opt.k);
    for (std::size_t r = 1; r < got.parent_per_round.size(); ++r) {
      for (VertexId v = 0; v < 10; ++v) {
        if (got.parent_per_round[r][v] == kNoVertex) {
          EXPECT_EQ(got.memory_parent[r][v], kNoVertex)
              << "seed " << seed << " r " << r << " v " << v;
          continue;
        }
        int winners = 0;
        for (const EdgeId eid : g.in_edges(v)) {
          const Edge& e = g.edge(eid);
          if (mp[r - 1][e.from] < kInfiniteDistance &&
              mp[r - 1][e.from] + e.length == mp[r][v]) {
            ++winners;
          }
        }
        if (winners == 1) {
          EXPECT_EQ(got.memory_parent[r][v], got.parent_per_round[r][v])
              << "seed " << seed << " r " << r << " v " << v;
        }
      }
    }
  }
}

TEST(KhopMemory, MemoryCostsTheOKFactor) {
  Rng rng(0x43F);
  const Graph g = make_random_graph(12, 48, {1, 5}, rng);
  auto neurons = [&](std::uint32_t k, bool mem) {
    KHopPolyOptions opt;
    opt.source = 0;
    opt.k = k;
    opt.in_network_parent_memory = mem;
    return khop_sssp_poly(g, opt).neurons;
  };
  // The memory's k-dependent part (banks) grows linearly with k. (The base
  // network also grows slightly with k — its message width is
  // bits_for((k+1)U+1) — so compare the memory deltas, not the bases.)
  const auto base4 = neurons(4, false), base8 = neurons(8, false);
  const auto mem4 = neurons(4, true) - base4;
  const auto mem8 = neurons(8, true) - base8;
  EXPECT_GT(mem8, mem4);
  EXPECT_NEAR(static_cast<double>(mem8) / static_cast<double>(mem4), 2.0, 0.5);
}

TEST(ApproxComposed, MatchesSequentialScales) {
  Rng rng(0x9D0);
  const Graph g = make_random_graph(24, 90, {1, 15}, rng);
  ApproxKHopOptions seq;
  seq.source = 0;
  seq.k = 5;
  ApproxKHopOptions par = seq;
  par.compose_scales = true;
  const auto a = approx_khop_sssp(g, seq);
  const auto b = approx_khop_sssp(g, par);
  ASSERT_EQ(a.dist.size(), b.dist.size());
  for (VertexId v = 0; v < 24; ++v) {
    if (a.reachable(v)) {
      EXPECT_NEAR(a.dist[v], b.dist[v], 1e-9) << "vertex " << v;
    } else {
      EXPECT_FALSE(b.reachable(v));
    }
  }
  EXPECT_EQ(a.neurons_total, b.neurons_total);
  // Composed: one clock for all scales.
  EXPECT_EQ(b.total_time, b.max_scale_time);
  EXPECT_LE(b.total_time, a.total_time);
}

}  // namespace
}  // namespace sga::nga
