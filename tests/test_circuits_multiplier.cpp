// Property tests for the constant multiplier and adder tree, and the
// gate-level matrix-vector round built from them (Section 2.2's
// "techniques carry over to matrix-vector multiplication").
#include <gtest/gtest.h>

#include "circuits/builder.h"
#include "circuits/multiplier.h"
#include "core/bitops.h"
#include "core/random.h"
#include "graph/generators.h"
#include "nga/matvec.h"
#include "nga/matvec_gate.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::circuits {
namespace {

std::uint64_t eval_multiplier(const snn::Network& net, const ConstMultiplier& m,
                              std::uint64_t x) {
  snn::Simulator sim(net);
  sim.inject_spike(m.enable, 0);
  snn::inject_binary(sim, m.x, x, 0);
  snn::SimConfig cfg;
  cfg.max_time = m.depth;
  sim.run(cfg);
  return snn::decode_binary_at(sim, m.product, m.depth);
}

struct MulParam {
  int in_bits;
  std::uint64_t constant;
};

class ConstMultiplierSweep : public ::testing::TestWithParam<MulParam> {};

TEST_P(ConstMultiplierSweep, MultipliesRandomInputs) {
  const auto& p = GetParam();
  Rng rng(0x301 + p.constant * 31 + static_cast<std::uint64_t>(p.in_bits));
  for (int trial = 0; trial < 8; ++trial) {
    snn::Network net;
    CircuitBuilder cb(net);
    const ConstMultiplier m =
        build_const_multiplier(cb, p.in_bits, p.constant);
    const auto x = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(mask_bits(p.in_bits))));
    EXPECT_EQ(eval_multiplier(net, m, x), p.constant * x)
        << p.constant << " * " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConstMultiplierSweep,
    ::testing::Values(MulParam{4, 1}, MulParam{4, 2}, MulParam{4, 3},
                      MulParam{4, 8}, MulParam{6, 5}, MulParam{6, 13},
                      MulParam{8, 100}, MulParam{8, 255}, MulParam{5, 21}));

TEST(ConstMultiplier, ExhaustiveSmallCase) {
  for (std::uint64_t c = 1; c <= 7; ++c) {
    for (std::uint64_t x = 0; x < 8; ++x) {
      snn::Network net;
      CircuitBuilder cb(net);
      const ConstMultiplier m = build_const_multiplier(cb, 3, c);
      EXPECT_EQ(eval_multiplier(net, m, x), c * x) << c << " * " << x;
    }
  }
}

TEST(ConstMultiplier, SizeGrowsWithPopcount) {
  // Shift-and-add: one adder per set bit beyond the first.
  snn::Network n1, n2;
  CircuitBuilder c1(n1), c2(n2);
  const auto sparse = build_const_multiplier(c1, 8, 0b10000000);  // 1 bit
  const auto dense = build_const_multiplier(c2, 8, 0b11111111);   // 8 bits
  EXPECT_LT(sparse.stats.neurons, dense.stats.neurons / 3);
  EXPECT_LT(sparse.depth, dense.depth);
}

TEST(ConstMultiplier, RejectsZeroConstant) {
  snn::Network net;
  CircuitBuilder cb(net);
  EXPECT_THROW(build_const_multiplier(cb, 4, 0), InvalidArgument);
}

class AdderTreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdderTreeSweep, SumsOperandsExactly) {
  const int d = GetParam();
  Rng rng(0xADD7 + static_cast<std::uint64_t>(d));
  snn::Network net;
  CircuitBuilder cb(net);
  const AdderTree t = build_adder_tree(cb, d, 5);
  snn::Simulator sim(net);
  sim.inject_spike(t.enable, 0);
  std::uint64_t expected = 0;
  for (int i = 0; i < d; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform_int(0, 31));
    snn::inject_binary(sim, t.inputs[static_cast<std::size_t>(i)], v, 0);
    expected += v;
  }
  snn::SimConfig cfg;
  cfg.max_time = t.depth;
  sim.run(cfg);
  EXPECT_EQ(snn::decode_binary_at(sim, t.sum, t.depth), expected);
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderTreeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13));

TEST(AdderTree, AllMaxOperandsDoNotOverflow) {
  snn::Network net;
  CircuitBuilder cb(net);
  const AdderTree t = build_adder_tree(cb, 6, 4);
  snn::Simulator sim(net);
  for (int i = 0; i < 6; ++i) {
    snn::inject_binary(sim, t.inputs[static_cast<std::size_t>(i)], 15, 0);
  }
  snn::SimConfig cfg;
  cfg.max_time = t.depth;
  sim.run(cfg);
  EXPECT_EQ(snn::decode_binary_at(sim, t.sum, t.depth), 90u);
}

class GateMatvecSweep : public ::testing::TestWithParam<int> {};

TEST_P(GateMatvecSweep, MatchesReferenceNga) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0x3A7E + seed);
  const Graph g = make_random_graph(8, 24, {1, 7}, rng);
  std::vector<std::uint64_t> x(8);
  for (auto& v : x) v = static_cast<std::uint64_t>(rng.uniform_int(0, 15));

  const auto ref = nga::matvec_power(g, x, 1);
  const auto got = nga::matvec_gate_level(g, x, 4);
  for (VertexId v = 0; v < 8; ++v) {
    if (g.in_degree(v) == 0) continue;  // gate-level leaves these at 0
    EXPECT_EQ(got.y[v], ref[v]) << "seed " << seed << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateMatvecSweep, ::testing::Range(0, 8));

TEST(GateMatvec, RamosAdderVariantAgrees) {
  Rng rng(0x3A7F);
  const Graph g = make_random_graph(6, 18, {1, 5}, rng);
  std::vector<std::uint64_t> x{3, 0, 7, 1, 5, 2};
  const auto a = nga::matvec_gate_level(g, x, 3, AdderKind::kRipple);
  const auto b = nga::matvec_gate_level(g, x, 3, AdderKind::kRamosBohorquez);
  EXPECT_EQ(a.y, b.y);
  EXPECT_LT(b.execution_time, a.execution_time);  // depth-2 adders are faster
}

TEST(GateMatvec, RejectsOversizedEntries) {
  Graph g(2);
  g.add_edge(0, 1, 2);
  EXPECT_THROW(nga::matvec_gate_level(g, {16, 0}, 4), InvalidArgument);
}

}  // namespace
}  // namespace sga::circuits
