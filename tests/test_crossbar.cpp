// Tests for the crossbar H_n (Section 4.4, Figure 2): structure, the
// delay-assignment embedding's exactness (host shortest paths = scaled G
// shortest paths, both conventionally and through the spiking algorithm),
// the O(m)-write embed/unembed protocol, and the O(n) embedding cost.
#include <gtest/gtest.h>

#include <map>

#include "core/random.h"
#include "crossbar/crossbar.h"
#include "crossbar/embedding.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"

namespace sga::crossbar {
namespace {

TEST(Crossbar, H3MatchesPaperCounts) {
  const Crossbar x(3);
  EXPECT_EQ(x.num_vertices(), 18u);
  std::map<EdgeType, int> by_type;
  for (const auto& e : x.fixed_edges()) ++by_type[e.type];
  EXPECT_EQ(by_type[EdgeType::kDiagonal], 3);  // (1): one per diagonal
  // (3): i ≤ j < n-1 (0-based): (0,0),(0,1),(1,1) = 3.
  EXPECT_EQ(by_type[EdgeType::kRowRight], 3);
  // (4): j+1 ≤ i: (1,0),(2,0),(2,1) = 3.
  EXPECT_EQ(by_type[EdgeType::kRowLeft], 3);
  // (5): i+1 ≤ j: (0,1),(0,2),(1,2) = 3.
  EXPECT_EQ(by_type[EdgeType::kColDown], 3);
  // (6): j ≤ i ≤ n-2: (0,0),(1,0),(1,1) = 3.
  EXPECT_EQ(by_type[EdgeType::kColUp], 3);
  EXPECT_EQ(x.num_cross_slots(), 6u);
}

TEST(Crossbar, VertexIdsAreDistinct) {
  const Crossbar x(4);
  std::set<VertexId> ids;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_TRUE(ids.insert(x.minus(i, j)).second);
      EXPECT_TRUE(ids.insert(x.plus(i, j)).second);
    }
  }
  EXPECT_EQ(ids.size(), 32u);
  EXPECT_THROW(x.minus(4, 0), InvalidArgument);
}

TEST(Crossbar, PlusRowRoutesAwayFromDiagonalOnly) {
  // From v⁺_ii every v⁺_ij is reachable within the row; the minus column j
  // funnels into v⁻_jj. Verified structurally on the snapshot with no
  // cross edges: from v⁺_ii you reach exactly row i's plus vertices.
  CrossbarMachine m(4);
  const Graph host = m.snapshot();
  const auto res = dijkstra(host, m.topology().plus(1, 1));
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_LT(res.dist[m.topology().plus(1, j)], kInfiniteDistance);
  }
  EXPECT_GE(res.dist[m.topology().plus(0, 0)], kInfiniteDistance);
  EXPECT_GE(res.dist[m.topology().minus(2, 2)], kInfiniteDistance);
}

TEST(CrossbarMachine, ProgramAndClearSlots) {
  CrossbarMachine m(3);
  EXPECT_EQ(m.active_cross_edges(), 0u);
  m.set_cross_delay(0, 1, 7);
  EXPECT_EQ(m.cross_delay(0, 1), std::optional<Delay>(7));
  EXPECT_EQ(m.active_cross_edges(), 1u);
  m.set_cross_delay(0, 1, 9);  // overwrite, still one active edge
  EXPECT_EQ(m.active_cross_edges(), 1u);
  m.clear_cross_delay(0, 1);
  EXPECT_EQ(m.cross_delay(0, 1), std::nullopt);
  EXPECT_EQ(m.active_cross_edges(), 0u);
  EXPECT_EQ(m.delay_writes(), 3u);
  EXPECT_THROW(m.set_cross_delay(1, 1, 3), InvalidArgument);
  EXPECT_THROW(m.set_cross_delay(0, 2, 0), InvalidArgument);
}

TEST(Embedding, SingleEdgePathHasExactScaledLength) {
  // The Section 4.4 identity: 1 + |j-i| + (ℓ' - 2|i-j| - 1) + |j-i| = ℓ'.
  Graph g(5);
  g.add_edge(1, 4, 3);
  CrossbarMachine m(5);
  const auto emb = embed(m, g);
  const Graph host = m.snapshot();
  const auto& xb = m.topology();
  const auto res = dijkstra(host, xb.graph_vertex(1));
  EXPECT_EQ(res.dist[xb.graph_vertex(4)], emb.scale * 3);
}

TEST(Embedding, PreservesAllPairsOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(0xE3B + seed);
    const Graph g = make_random_graph(8, 30, {1, 6}, rng);
    CrossbarMachine m(8);
    const auto emb = embed(m, g);
    const auto ref = dijkstra(g, 0);
    const auto got = embedded_distances_conventional(m, emb, 8, 0);
    for (VertexId v = 0; v < 8; ++v) {
      EXPECT_EQ(got[v], ref.dist[v]) << "seed " << seed << " v " << v;
    }
  }
}

TEST(Embedding, ScaleIsTwoNOverMinLength) {
  Graph g(6);
  g.add_edge(0, 1, 4);
  CrossbarMachine m(6);
  const auto emb = embed(m, g);
  EXPECT_EQ(emb.scale, 3);  // ceil(2·6 / 4)
}

TEST(Embedding, UsesOneDelayWritePerEdge) {
  Rng rng(0xE3C);
  const Graph g = make_random_graph(10, 40, {1, 5}, rng);
  CrossbarMachine m(10);
  const auto emb = embed(m, g);
  EXPECT_EQ(emb.delay_writes, 40u);
}

TEST(Embedding, MultiGraphEmbedUnembedProtocol) {
  // Section 4.4's sequence: embed G1, unembed, embed G2 — each step O(m_i)
  // writes, and the second embedding is correct.
  Rng rng(0xE3D);
  const Graph g1 = make_random_graph(7, 20, {1, 4}, rng);
  const Graph g2 = make_random_graph(7, 15, {1, 4}, rng);
  CrossbarMachine m(7);

  const auto e1 = embed(m, g1);
  EXPECT_THROW(embed(m, g2), InvalidArgument);  // must unembed first
  unembed(m, g1);
  EXPECT_EQ(m.active_cross_edges(), 0u);
  const auto e2 = embed(m, g2);
  EXPECT_EQ(m.delay_writes(), 20u + 20u + 15u);

  const auto ref = dijkstra(g2, 0);
  const auto got = embedded_distances_conventional(m, e2, 7, 0);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(got[v], ref.dist[v]);
  (void)e1;
}

TEST(Embedding, RejectsSelfLoopsAndOversizedGraphs) {
  Graph loop(2);
  loop.add_edge(0, 0, 1);
  CrossbarMachine m(2);
  EXPECT_THROW(embed(m, loop), InvalidArgument);

  Rng rng(1);
  const Graph big = make_random_graph(5, 10, {1, 2}, rng);
  CrossbarMachine small(4);
  EXPECT_THROW(embed(small, big), InvalidArgument);
}

TEST(SpikingOnCrossbar, MatchesDirectSpikingSssp) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(0xE40 + seed);
    const Graph g = make_random_graph(7, 24, {1, 5}, rng);
    const auto direct = dijkstra(g, 0);
    const auto emb = spiking_sssp_on_crossbar(g, 0);
    for (VertexId v = 0; v < 7; ++v) {
      EXPECT_EQ(emb.dist[v], direct.dist[v]) << "seed " << seed << " v " << v;
    }
  }
}

TEST(SpikingOnCrossbar, EmbeddingCostIsTheScaleFactor) {
  // Section 4.5: the spiking portion slows down by the O(n) scale factor —
  // execution time on the crossbar = scale × direct execution time.
  Rng rng(0xE41);
  const Graph g = make_random_graph(9, 30, {1, 4}, rng);
  nga::SpikingSsspOptions direct_opt;
  direct_opt.source = 0;
  const auto direct = nga::spiking_sssp(g, direct_opt);
  const auto emb = spiking_sssp_on_crossbar(g, 0);
  EXPECT_EQ(emb.execution_time, direct.execution_time * emb.scale);
  // And the host network is Θ(n²) neurons vs n.
  EXPECT_EQ(emb.neurons, 2u * 9u * 9u);
}

TEST(SpikingOnCrossbar, TargetModeTerminatesAtTarget) {
  Rng rng(0xE42);
  const Graph g = make_path_graph(6, {2, 3}, rng);
  const auto ref = dijkstra(g, 0);
  const auto emb = spiking_sssp_on_crossbar(g, 0, VertexId{4});
  EXPECT_EQ(emb.dist[4], ref.dist[4]);
}

}  // namespace
}  // namespace sga::crossbar
