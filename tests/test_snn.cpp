// Unit tests for the LIF network and event-driven simulator: the dynamics of
// Definitions 1–3 (decay, threshold, reset, delays, inhibition, termination)
// and the simulator's observability surface.
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <vector>

#include "snn/network.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::snn {
namespace {

TEST(Network, AddNeuronAndSynapse) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(2);
  net.add_synapse(a, b, 1.5, 3);
  EXPECT_EQ(net.num_neurons(), 2u);
  EXPECT_EQ(net.num_synapses(), 1u);
  EXPECT_EQ(net.params(b).v_threshold, 2);
  ASSERT_EQ(net.out_synapses(a).size(), 1u);
  EXPECT_EQ(net.out_synapses(a)[0].target, b);
  EXPECT_EQ(net.out_synapses(a)[0].delay, 3);
}

TEST(Network, RejectsZeroDelay) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  EXPECT_THROW(net.add_synapse(a, a, 1, 0), InvalidArgument);
}

TEST(Network, RejectsBadDecay) {
  Network net;
  EXPECT_THROW(net.add_neuron(NeuronParams{0, 1, 1.5}), InvalidArgument);
  EXPECT_THROW(net.add_neuron(NeuronParams{0, 1, -0.1}), InvalidArgument);
}

TEST(Network, PositiveInWeightSizesFireOnceGuards) {
  // The helper behind fire-once constructions: the total excitatory drive a
  // neuron can receive if every presynaptic neuron fires once.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_threshold_neuron(1);
  net.add_synapse(a, sink, 2.5, 1);
  net.add_synapse(b, sink, 1, 3);
  net.add_synapse(a, sink, -4, 6);  // inhibition does not count
  net.add_synapse(a, b, 7, 1);      // different target does not count
  EXPECT_DOUBLE_EQ(net.positive_in_weight(sink), 3.5);
  EXPECT_DOUBLE_EQ(net.positive_in_weight(a), 0.0);

  // A self-inhibition stronger than that bound makes the neuron fire-once.
  net.add_synapse(sink, sink, -4, 1);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  sim.inject_spike(b, 0);
  SimConfig cfg;
  cfg.max_time = 10;
  sim.run(cfg);
  EXPECT_EQ(sim.spike_count(sink), 1u);  // fires at t=1, b's spike at t=3
                                         // cannot overcome the -4 guard
}

TEST(Network, Groups) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.define_group("inputs", {a, b});
  EXPECT_TRUE(net.has_group("inputs"));
  EXPECT_EQ(net.group("inputs").size(), 2u);
  EXPECT_THROW(net.group("nope"), InvalidArgument);
  EXPECT_THROW(net.define_group("bad", {99}), InvalidArgument);
}

TEST(CompiledNetwork, PacksCsrInSourceOrderSortedByDelay) {
  // CSR packing groups each neuron's synapses contiguously and sorts each
  // row by delay (stably), even when sources were interleaved at build time.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(2);
  const NeuronId c = net.add_neuron(NeuronParams{-1, 3, 0.5});
  net.add_synapse(b, a, 1, 2);
  net.add_synapse(a, b, 2, 3);
  net.add_synapse(b, c, -1, 5);
  net.add_synapse(a, c, 4, 1);

  const CompiledNetwork cn = net.compile();
  EXPECT_EQ(cn.num_neurons(), 3u);
  EXPECT_EQ(cn.num_synapses(), 4u);
  EXPECT_EQ(cn.max_delay(), 5);

  // Row extents: a has 2, b has 2, c has 0.
  EXPECT_EQ(cn.out_begin(a), 0u);
  EXPECT_EQ(cn.out_end(a), 2u);
  EXPECT_EQ(cn.out_degree(b), 2u);
  EXPECT_EQ(cn.out_degree(c), 0u);

  // a's row sorted by delay: a→c (w4 d1) before a→b (w2 d3), regardless of
  // the insertion order above.
  EXPECT_EQ(cn.syn_target(cn.out_begin(a)), c);
  EXPECT_EQ(cn.syn_delay(cn.out_begin(a)), 1);
  EXPECT_DOUBLE_EQ(cn.syn_weight(cn.out_begin(a)), 4);
  EXPECT_EQ(cn.syn_target(cn.out_begin(a) + 1), b);
  EXPECT_EQ(cn.syn_delay(cn.out_begin(a) + 1), 3);

  // The range view yields the same synapses (b's row was already sorted).
  const auto row = cn.out_synapses(b);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].target, a);
  EXPECT_EQ(row[1].target, c);
  EXPECT_EQ(row[1].delay, 5);

  // SoA params match the builder's AoS view.
  EXPECT_DOUBLE_EQ(cn.v_reset(c), -1);
  EXPECT_DOUBLE_EQ(cn.v_threshold(c), 3);
  EXPECT_DOUBLE_EQ(cn.tau(c), 0.5);
  EXPECT_DOUBLE_EQ(cn.params(c).tau, net.params(c).tau);
}

TEST(CompiledNetwork, DelaySegmentsPartitionEachRow) {
  // Freeze-time contract of the segment CSR: per row, segment synapse
  // ranges exactly tile [out_begin, out_end), segment delays are strictly
  // increasing, every synapse in a segment carries the segment's delay, and
  // equal-delay synapses keep their builder insertion order (stable sort).
  std::mt19937 rng(20260807);
  Network net;
  const std::size_t n = 37;
  for (std::size_t i = 0; i < n; ++i) net.add_threshold_neuron(1);
  // Interleaved insertion with heavy delay collisions to create real runs.
  std::vector<std::vector<Synapse>> inserted(n);
  for (int e = 0; e < 600; ++e) {
    const auto src = static_cast<NeuronId>(rng() % n);
    const auto dst = static_cast<NeuronId>(rng() % n);
    const auto d = static_cast<Delay>(1 + rng() % 5);
    const auto w = static_cast<SynWeight>(1 + e % 7);
    net.add_synapse(src, dst, w, d);
    inserted[src].push_back(Synapse{dst, w, d});
  }

  const CompiledNetwork cn = net.compile();
  std::size_t total_segments = 0;
  for (NeuronId i = 0; i < n; ++i) {
    std::size_t expect_next = cn.out_begin(i);
    Delay prev_delay = 0;
    for (std::size_t s = cn.seg_begin(i); s < cn.seg_end(i); ++s) {
      EXPECT_EQ(cn.seg_syn_begin(s), expect_next);
      EXPECT_LT(cn.seg_syn_begin(s), cn.seg_syn_end(s));  // runs are non-empty
      EXPECT_GT(cn.seg_delay(s), prev_delay);  // strictly increasing delays
      prev_delay = cn.seg_delay(s);
      for (std::size_t k = cn.seg_syn_begin(s); k < cn.seg_syn_end(s); ++k) {
        EXPECT_EQ(cn.syn_delay(k), cn.seg_delay(s));
      }
      expect_next = cn.seg_syn_end(s);
      ++total_segments;
    }
    EXPECT_EQ(expect_next, cn.out_end(i));  // segments tile the row exactly

    // Stability: the row equals the insertion sequence stably sorted by
    // delay — filtering the insertion sequence by one delay must reproduce
    // the corresponding run element-for-element.
    std::size_t k = cn.out_begin(i);
    for (Delay d = 1; d <= 5; ++d) {
      for (const Synapse& s : inserted[i]) {
        if (s.delay != d) continue;
        ASSERT_LT(k, cn.out_end(i));
        EXPECT_EQ(cn.syn_target(k), s.target);
        EXPECT_DOUBLE_EQ(cn.syn_weight(k), s.weight);
        ++k;
      }
    }
    EXPECT_EQ(k, cn.out_end(i));
  }
  EXPECT_EQ(total_segments, cn.num_delay_segments());
}

TEST(CompiledNetwork, PositiveInWeightIsMaintainedIncrementally) {
  // The builder keeps the positive in-weight table up to date on every
  // add_synapse (no O(m) rescan), and compile() carries it over verbatim.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_threshold_neuron(1);
  EXPECT_DOUBLE_EQ(net.positive_in_weight(sink), 0.0);
  net.add_synapse(a, sink, 2.5, 1);
  EXPECT_DOUBLE_EQ(net.positive_in_weight(sink), 2.5);
  net.add_synapse(a, sink, -4, 1);  // inhibition does not count
  EXPECT_DOUBLE_EQ(net.positive_in_weight(sink), 2.5);
  net.add_synapse(sink, sink, 1, 1);  // self-excitation does
  EXPECT_DOUBLE_EQ(net.positive_in_weight(sink), 3.5);

  const CompiledNetwork cn = net.compile();
  EXPECT_DOUBLE_EQ(cn.positive_in_weight(sink), 3.5);
  EXPECT_DOUBLE_EQ(cn.positive_in_weight(a), 0.0);
}

TEST(CompiledNetwork, CarriesGroupsOver) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.define_group("inputs", {a, b});
  net.define_group("outputs", {b});

  const CompiledNetwork cn = net.compile();
  EXPECT_TRUE(cn.has_group("inputs"));
  EXPECT_FALSE(cn.has_group("nope"));
  EXPECT_EQ(cn.group("inputs"), (std::vector<NeuronId>{a, b}));
  EXPECT_EQ(cn.group_names(), (std::vector<std::string>{"inputs", "outputs"}));
  EXPECT_THROW(cn.group("nope"), InvalidArgument);
}

TEST(CompiledNetwork, FreezeIsASnapshot) {
  // Mutating the builder after compile() must not affect the frozen copy.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const CompiledNetwork before = net.compile();
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 4);
  EXPECT_EQ(before.num_neurons(), 1u);
  EXPECT_EQ(before.num_synapses(), 0u);
  const CompiledNetwork after = net.compile();
  EXPECT_EQ(after.num_neurons(), 2u);
  EXPECT_EQ(after.max_delay(), 4);
}

TEST(Simulator, InjectedSpikeFiresAndPropagates) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 5);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  const SimStats st = sim.run();
  EXPECT_EQ(sim.first_spike(a), 0);
  EXPECT_EQ(sim.first_spike(b), 5);  // arrival at s + d fires at s + d
  EXPECT_EQ(st.spikes, 2u);
}

TEST(Simulator, SubthresholdInputAccumulatesWithoutDecay) {
  Network net;
  const NeuronId src1 = net.add_threshold_neuron(1);
  const NeuronId src2 = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_threshold_neuron(2);  // needs 2 units
  net.add_synapse(src1, sink, 1, 1);
  net.add_synapse(src2, sink, 1, 4);
  Simulator sim(net);
  sim.inject_spike(src1, 0);
  sim.inject_spike(src2, 0);
  sim.run();
  // τ = 0: the unit from src1 (arrives t=1) persists until src2's unit
  // arrives at t=4 and pushes the potential to threshold.
  EXPECT_EQ(sim.first_spike(sink), 4);
}

TEST(Simulator, FullDecayMakesGateMemoryless) {
  Network net;
  const NeuronId src1 = net.add_threshold_neuron(1);
  const NeuronId src2 = net.add_threshold_neuron(1);
  const NeuronId gate = net.add_neuron(NeuronParams{0, 2, 1.0});  // τ = 1
  net.add_synapse(src1, gate, 1, 1);
  net.add_synapse(src2, gate, 1, 4);
  Simulator sim(net);
  sim.inject_spike(src1, 0);
  sim.inject_spike(src2, 0);
  sim.run();
  // With τ = 1 the early unit decays away before the late one arrives.
  EXPECT_EQ(sim.first_spike(gate), kNever);
}

TEST(Simulator, FractionalDecayFollowsClosedForm) {
  Network net;
  const NeuronId src = net.add_threshold_neuron(1);
  const NeuronId probe = net.add_neuron(NeuronParams{0, 100, 0.5});
  const NeuronId late = net.add_threshold_neuron(1);
  net.add_synapse(src, probe, 8, 1);
  net.add_synapse(late, probe, 0.0, 4);  // zero-weight touch forces an update
  Simulator sim(net);
  sim.inject_spike(src, 0);
  sim.inject_spike(late, 0);
  sim.run();
  // v = 8 at t=1; after 3 more steps of τ=0.5 decay: 8 * (1/2)^3 = 1.
  EXPECT_DOUBLE_EQ(sim.potential(probe), 1.0);
}

TEST(Simulator, ThresholdTestIsGreaterOrEqual) {
  Network net;
  const NeuronId src = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_threshold_neuron(1);
  net.add_synapse(src, sink, 1, 1);  // exactly threshold
  Simulator sim(net);
  sim.inject_spike(src, 0);
  sim.run();
  EXPECT_EQ(sim.first_spike(sink), 1);
}

TEST(Simulator, ResetVoltageAfterFire) {
  Network net;
  const NeuronId src = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_neuron(NeuronParams{-3, 1, 0.0});
  net.add_synapse(src, sink, 5, 1);
  Simulator sim(net);
  sim.inject_spike(src, 0);
  sim.run();
  EXPECT_EQ(sim.first_spike(sink), 1);
  EXPECT_DOUBLE_EQ(sim.potential(sink), -3.0);  // Eq. (3): reset to v_reset
}

TEST(Simulator, InhibitionCancelsSameStepExcitation) {
  Network net;
  const NeuronId exc = net.add_threshold_neuron(1);
  const NeuronId inh = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_threshold_neuron(1);
  net.add_synapse(exc, sink, 1, 2);
  net.add_synapse(inh, sink, -1, 2);
  Simulator sim(net);
  sim.inject_spike(exc, 0);
  sim.inject_spike(inh, 0);
  sim.run();
  EXPECT_EQ(sim.first_spike(sink), kNever);
}

TEST(Simulator, SelfLoopLatchFiresIndefinitelyUntilHorizon) {
  Network net;
  const NeuronId m = net.add_threshold_neuron(1);
  net.add_synapse(m, m, 1, 1);
  Simulator sim(net);
  sim.inject_spike(m, 0);
  SimConfig cfg;
  cfg.max_time = 10;
  const SimStats st = sim.run(cfg);
  EXPECT_EQ(sim.spike_count(m), 11u);  // t = 0..10
  EXPECT_EQ(st.spikes, 11u);
}

TEST(Simulator, TerminalNeuronStopsComputation) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  const NeuronId c = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 3);
  net.add_synapse(b, c, 1, 10);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  SimConfig cfg;
  cfg.terminal_neurons = {b};
  const SimStats st = sim.run(cfg);
  EXPECT_TRUE(st.hit_terminal);
  EXPECT_EQ(st.execution_time, 3);  // Definition 3's T
  EXPECT_EQ(sim.first_spike(c), kNever);
}

TEST(Simulator, EventDrivenSkipsIdleTime) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 1000000);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  const SimStats st = sim.run();
  EXPECT_EQ(sim.first_spike(b), 1000000);
  EXPECT_EQ(st.event_times, 2u);  // only t = 0 and t = 10^6 touched
}

TEST(Simulator, RecordsFirstSpikeCause) {
  Network net;
  const NeuronId near = net.add_threshold_neuron(1);
  const NeuronId far = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_threshold_neuron(1);
  net.add_synapse(near, sink, 1, 2);
  net.add_synapse(far, sink, 1, 7);
  Simulator sim(net);
  sim.inject_spike(near, 0);
  sim.inject_spike(far, 0);
  SimConfig cfg;
  cfg.record_causes = true;
  sim.run(cfg);
  EXPECT_EQ(sim.first_spike(sink), 2);
  EXPECT_EQ(sim.first_spike_cause(sink), near);
}

TEST(Simulator, SpikeLogIsOrderedAndComplete) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 2);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  SimConfig cfg;
  cfg.record_spike_log = true;
  sim.run(cfg);
  ASSERT_EQ(sim.spike_log().size(), 2u);
  EXPECT_EQ(sim.spike_log()[0], (std::pair<Time, NeuronId>{0, a}));
  EXPECT_EQ(sim.spike_log()[1], (std::pair<Time, NeuronId>{2, b}));
}

TEST(Simulator, RunIsOneShot) {
  Network net;
  net.add_threshold_neuron(1);
  Simulator sim(net);
  sim.run();
  EXPECT_THROW(sim.run(), InvalidArgument);
}

TEST(Simulator, TimeLimitReported) {
  Network net;
  const NeuronId m = net.add_threshold_neuron(1);
  net.add_synapse(m, m, 1, 1);
  Simulator sim(net);
  sim.inject_spike(m, 0);
  SimConfig cfg;
  cfg.max_time = 5;
  const SimStats st = sim.run(cfg);
  EXPECT_EQ(st.end_time, 5);
  EXPECT_FALSE(st.hit_terminal);
}

TEST(Simulator, ForcedAndSynapticSpikeSameStepFiresOnce) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 1);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  sim.inject_spike(b, 1);  // collides with a's delivery at t = 1
  sim.run();
  EXPECT_EQ(sim.spike_count(b), 1u);
}

TEST(Probe, InjectAndDecodeBinary) {
  Network net;
  std::vector<NeuronId> bus;
  for (int i = 0; i < 6; ++i) bus.push_back(net.add_threshold_neuron(1));
  Simulator sim(net);
  inject_binary(sim, bus, 0b101101, 0);
  sim.run();
  EXPECT_EQ(decode_binary_at(sim, bus, 0), 0b101101u);
  EXPECT_EQ(decode_binary_window(sim, bus, 0, 5), 0b101101u);
}

TEST(Probe, InjectBinaryRejectsOverflow) {
  Network net;
  std::vector<NeuronId> bus{net.add_threshold_neuron(1)};
  Simulator sim(net);
  EXPECT_THROW(inject_binary(sim, bus, 2, 0), InvalidArgument);
}

TEST(Probe, WindowDecodeSeesMidWindowSpike) {
  // Regression: a bit spiking at 0, 5, and 10 fired inside [4, 6], but the
  // old first/last-spike-only decode reported it silent (first < t0 and
  // last > t1). The fix resolves such bits from the spike log.
  Network net;
  const NeuronId inside = net.add_threshold_neuron(1);
  const NeuronId outside = net.add_threshold_neuron(1);
  Simulator sim(net);
  for (const Time t : {0, 5, 10}) sim.inject_spike(inside, t);
  for (const Time t : {0, 10}) sim.inject_spike(outside, t);
  SimConfig cfg;
  cfg.record_spike_log = true;
  sim.run(cfg);
  const std::vector<NeuronId> bus{inside, outside};
  EXPECT_EQ(decode_binary_window(sim, bus, 4, 6), 0b01u);
  EXPECT_EQ(decode_binary_window(sim, bus, 0, 10), 0b11u);
  EXPECT_EQ(decode_binary_window(sim, bus, 6, 9), 0b00u);
  EXPECT_TRUE(sim.fired_in(inside, 5, 5));
  EXPECT_FALSE(sim.fired_in(inside, 4, 4));
}

TEST(Probe, WindowDecodeAmbiguousWithoutLogThrows) {
  // Without a spike log the mid-window question is undecidable; the decoder
  // must say so instead of guessing.
  Network net;
  const NeuronId n = net.add_threshold_neuron(1);
  Simulator sim(net);
  for (const Time t : {0, 5, 10}) sim.inject_spike(n, t);
  sim.run();
  const std::vector<NeuronId> bus{n};
  EXPECT_THROW(decode_binary_window(sim, bus, 4, 6), InvalidArgument);
  // Conclusive windows still work without the log.
  EXPECT_EQ(decode_binary_window(sim, bus, 0, 3), 1u);
  EXPECT_EQ(decode_binary_window(sim, bus, 11, 12), 0u);
}

TEST(Probe, InjectBinaryValidates63BitBoundary) {
  // Regression: at bits.size() == 63 the old check skipped range validation
  // entirely, silently dropping bit 63 of oversized values.
  Network net;
  std::vector<NeuronId> bus;
  for (int i = 0; i < 63; ++i) bus.push_back(net.add_threshold_neuron(1));
  Simulator sim(net);
  EXPECT_THROW(inject_binary(sim, bus, 1ULL << 63, 0), InvalidArgument);
  const std::uint64_t max63 = (1ULL << 63) - 1;  // largest representable
  inject_binary(sim, bus, max63, 0);
  sim.run();
  EXPECT_EQ(decode_binary_at(sim, bus, 0), max63);
}

TEST(Simulator, PseudopolynomialDelayPastHorizonIsDroppedNotOverflowed) {
  // Regression: with the kNever horizon, t + delay could overflow Time
  // (signed UB) for pseudopolynomial delays. The subtraction-form guard
  // drops the event and reports hit_time_limit instead.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  const NeuronId c = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, kNever / 2);
  net.add_synapse(b, c, 1, std::numeric_limits<Delay>::max() - 10);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  const SimStats st = sim.run();  // default horizon: max_time = kNever
  EXPECT_EQ(sim.first_spike(b), kNever / 2);
  EXPECT_EQ(sim.spike_count(c), 0u);  // dropped, not wrapped around
  EXPECT_TRUE(st.hit_time_limit);
  EXPECT_EQ(st.end_time, kNever / 2);
}

TEST(Simulator, BothBeyondHorizonDropPathsReportTimeLimit) {
  // Consistency: work pruned at fire() time and injected spikes past the
  // horizon both surface as hit_time_limit.
  {
    Network net;
    const NeuronId a = net.add_threshold_neuron(1);
    const NeuronId b = net.add_threshold_neuron(1);
    net.add_synapse(a, b, 1, 10);
    Simulator sim(net);
    sim.inject_spike(a, 0);
    SimConfig cfg;
    cfg.max_time = 5;
    EXPECT_TRUE(sim.run(cfg).hit_time_limit);
    EXPECT_EQ(sim.spike_count(b), 0u);
  }
  {
    Network net;
    const NeuronId a = net.add_threshold_neuron(1);
    Simulator sim(net);
    sim.inject_spike(a, 10);
    SimConfig cfg;
    cfg.max_time = 5;
    EXPECT_TRUE(sim.run(cfg).hit_time_limit);
    EXPECT_EQ(sim.spike_count(a), 0u);
  }
}

}  // namespace
}  // namespace sga::snn
