// Property tests for the deterministic degree-balanced partitioner and the
// shard-aware CSR split (snn/partition.h) the parallel simulator runs on.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include "core/random.h"
#include "snn/compiled_network.h"
#include "snn/network.h"
#include "snn/partition.h"

namespace sga {
namespace {

snn::Network random_net(std::uint64_t seed) {
  Rng rng(0xBEEF + seed * 0x9E3779B97F4A7C15ULL);
  snn::Network net;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 50));
  for (std::size_t i = 0; i < n; ++i) {
    net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  }
  const auto syn = static_cast<std::size_t>(rng.uniform_int(0, 6 * n));
  for (std::size_t s = 0; s < syn; ++s) {
    net.add_synapse(static_cast<NeuronId>(
                        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
                    static_cast<NeuronId>(
                        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
                    1, rng.uniform_int(1, 20));
  }
  return net;
}

class PartitionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PartitionFuzz, EveryNeuronAssignedExactlyOnceWithConsistentIndices) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0x5EED + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));

  const snn::Partition p = make_partition(net, s);
  ASSERT_EQ(p.num_shards, s);
  ASSERT_EQ(p.shard_of.size(), net.num_neurons());
  ASSERT_EQ(p.local_index.size(), net.num_neurons());
  ASSERT_EQ(p.shard_neurons.size(), s);
  ASSERT_EQ(p.shard_load.size(), s);

  // Exactly-once: shard membership lists tile [0, n), and the inverse
  // (shard_of, local_index) maps agree with them.
  std::set<NeuronId> seen;
  for (std::size_t sh = 0; sh < s; ++sh) {
    ASSERT_TRUE(std::is_sorted(p.shard_neurons[sh].begin(),
                               p.shard_neurons[sh].end()));
    for (std::size_t k = 0; k < p.shard_neurons[sh].size(); ++k) {
      const NeuronId id = p.shard_neurons[sh][k];
      ASSERT_TRUE(seen.insert(id).second) << "neuron " << id << " twice";
      ASSERT_EQ(p.shard_of[id], sh);
      ASSERT_EQ(p.local_index[id], k);
    }
  }
  ASSERT_EQ(seen.size(), net.num_neurons());

  // Load bookkeeping matches the documented weight model.
  for (std::size_t sh = 0; sh < s; ++sh) {
    std::uint64_t load = 0;
    for (const NeuronId id : p.shard_neurons[sh]) {
      load += 1 + net.out_degree(id);
    }
    EXPECT_EQ(p.shard_load[sh], load) << "shard " << sh;
  }
}

TEST_P(PartitionFuzz, LoadStaysWithinTheDocumentedBalanceBound) {
  // LPT guarantee stated in partition.h: when a neuron lands on the
  // lightest shard, that shard held ≤ total/S, so every final load is
  // ≤ total/S + w_max.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0x10AD + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));
  const snn::Partition p = make_partition(net, s);

  std::uint64_t total = 0;
  std::uint64_t w_max = 0;
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    const std::uint64_t w = 1 + net.out_degree(id);
    total += w;
    w_max = std::max(w_max, w);
  }
  for (std::size_t sh = 0; sh < s; ++sh) {
    EXPECT_LE(p.shard_load[sh], total / s + w_max)
        << "seed " << seed << " shard " << sh << "/" << s;
  }
}

TEST_P(PartitionFuzz, DeterministicForANetworkAndShardCount) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0xDE7E + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));

  const snn::Partition a = make_partition(net, s);
  const snn::Partition b = make_partition(net, s);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.local_index, b.local_index);
  EXPECT_EQ(a.shard_neurons, b.shard_neurons);
  EXPECT_EQ(a.shard_load, b.shard_load);
}

TEST_P(PartitionFuzz, ShardSplitPreservesEverySynapseExactlyOnce) {
  // Round-trip: reconstruct (source, target, weight, delay) tuples from
  // the intra + cross families and compare against the CSR — same
  // multiset, and per-source insertion order preserved within families.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0x59117 + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));
  const snn::ShardSplit split = net.shard_split(make_partition(net, s));

  using Syn = std::tuple<NeuronId, NeuronId, SynWeight, Delay>;
  std::vector<Syn> expect;
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    for (std::size_t k = net.out_begin(id); k < net.out_end(id); ++k) {
      expect.emplace_back(id, net.syn_target(k), net.syn_weight(k),
                          net.syn_delay(k));
    }
  }
  std::vector<Syn> got;
  std::size_t cross_count = 0;
  Delay min_cross = 0;
  for (std::size_t sh = 0; sh < split.shards.size(); ++sh) {
    const snn::ShardCsr& c = split.shards[sh];
    for (std::size_t k = 0; k < c.num_neurons(); ++k) {
      const NeuronId src = c.global_ids[k];
      for (std::size_t j = c.intra_offsets[k]; j < c.intra_offsets[k + 1];
           ++j) {
        const NeuronId tgt =
            split.partition.shard_neurons[sh][c.intra_target[j]];
        got.emplace_back(src, tgt, c.intra_weight[j], c.intra_delay[j]);
      }
      for (std::size_t j = c.cross_offsets[k]; j < c.cross_offsets[k + 1];
           ++j) {
        ASSERT_NE(c.cross_shard[j], sh) << "cross synapse stayed home";
        const NeuronId tgt =
            split.partition.shard_neurons[c.cross_shard[j]][c.cross_local[j]];
        got.emplace_back(src, tgt, c.cross_weight[j], c.cross_delay[j]);
        ++cross_count;
        min_cross = min_cross == 0 ? c.cross_delay[j]
                                   : std::min(min_cross, c.cross_delay[j]);
      }
    }
  }
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect) << "seed " << seed << " S " << s;
  EXPECT_EQ(split.num_cross_synapses, cross_count);
  EXPECT_EQ(split.min_cross_delay, min_cross);
}

TEST_P(PartitionFuzz, SegmentCsrsTileBothFamiliesWithSortedRuns) {
  // The segmented layout (ARCHITECTURE.md §1.6): every member neuron's
  // intra family must be tiled by delay runs with strictly increasing
  // delays, and its cross family by (shard, delay) runs in strictly
  // increasing lexicographic order — non-empty, contiguous, gap-free, and
  // every covered synapse carrying its segment's key. That exact structure
  // is what lets the shard fire() do one queue lookup (or one mailbox slab)
  // per run.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0x59117 + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));
  const snn::ShardSplit split = net.shard_split(make_partition(net, s));

  for (std::size_t sh = 0; sh < split.shards.size(); ++sh) {
    const snn::ShardCsr& c = split.shards[sh];
    ASSERT_EQ(c.intra_seg_offsets.size(), c.num_neurons() + 1);
    ASSERT_EQ(c.cross_seg_offsets.size(), c.num_neurons() + 1);
    for (std::size_t k = 0; k < c.num_neurons(); ++k) {
      std::size_t expect_next = c.intra_offsets[k];
      for (std::size_t g = c.intra_seg_offsets[k];
           g < c.intra_seg_offsets[k + 1]; ++g) {
        EXPECT_EQ(c.intra_seg_begin[g], expect_next) << "gap or overlap";
        EXPECT_LT(c.intra_seg_begin[g], c.intra_seg_end[g]) << "empty run";
        if (g > c.intra_seg_offsets[k]) {
          EXPECT_LT(c.intra_seg_delay[g - 1], c.intra_seg_delay[g])
              << "intra delays not strictly increasing";
        }
        for (std::size_t j = c.intra_seg_begin[g]; j < c.intra_seg_end[g];
             ++j) {
          EXPECT_EQ(c.intra_delay[j], c.intra_seg_delay[g]);
        }
        expect_next = c.intra_seg_end[g];
      }
      EXPECT_EQ(expect_next, c.intra_offsets[k + 1])
          << "intra segments do not cover the row";

      expect_next = c.cross_offsets[k];
      for (std::size_t g = c.cross_seg_offsets[k];
           g < c.cross_seg_offsets[k + 1]; ++g) {
        EXPECT_EQ(c.cross_seg_begin[g], expect_next) << "gap or overlap";
        EXPECT_LT(c.cross_seg_begin[g], c.cross_seg_end[g]) << "empty run";
        if (g > c.cross_seg_offsets[k]) {
          const bool increasing =
              c.cross_seg_shard[g - 1] < c.cross_seg_shard[g] ||
              (c.cross_seg_shard[g - 1] == c.cross_seg_shard[g] &&
               c.cross_seg_delay[g - 1] < c.cross_seg_delay[g]);
          EXPECT_TRUE(increasing)
              << "cross (shard, delay) keys not strictly increasing";
        }
        for (std::size_t j = c.cross_seg_begin[g]; j < c.cross_seg_end[g];
             ++j) {
          EXPECT_EQ(c.cross_shard[j], c.cross_seg_shard[g]);
          EXPECT_EQ(c.cross_delay[j], c.cross_seg_delay[g]);
        }
        expect_next = c.cross_seg_end[g];
      }
      EXPECT_EQ(expect_next, c.cross_offsets[k + 1])
          << "cross segments do not cover the row";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionFuzz, ::testing::Range(0, 20));

// --- kCutRefined property suite (ISSUE 9) ------------------------------
//
// The refinement contract from partition.h: lexicographic objective that
// never decreases min cross delay (0 = "no cross" orders above every real
// delay), only accepts strictly-improving cut moves, respects the LPT
// balance cap, and is a pure function of (network, S).

// Orders min-cross-delay values with the 0 = +∞ ("no cross") convention.
std::uint64_t min_cross_rank(Delay d) {
  return d == 0 ? std::numeric_limits<std::uint64_t>::max()
                : static_cast<std::uint64_t>(d);
}

class CutRefinedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CutRefinedFuzz, NeverWorseThanTheLptSeedOnEitherObjective) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0xC07 + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));

  const snn::Partition lpt =
      make_partition(net, s, snn::PartitionKind::kLpt);
  const snn::Partition ref =
      make_partition(net, s, snn::PartitionKind::kCutRefined);
  ASSERT_EQ(lpt.kind, snn::PartitionKind::kLpt);
  ASSERT_EQ(ref.kind, snn::PartitionKind::kCutRefined);
  EXPECT_TRUE(lpt.pass_cut_weight.empty());

  EXPECT_LE(partition_cut_weight(net, ref),
            partition_cut_weight(net, lpt) + 1e-9)
      << "seed " << seed << " S " << s;
  EXPECT_GE(min_cross_rank(partition_min_cross_delay(net, ref)),
            min_cross_rank(partition_min_cross_delay(net, lpt)))
      << "refinement shrank the lookahead window, seed " << seed;
}

TEST_P(CutRefinedFuzz, TelemetryIsMonotoneAndMatchesTheHelpers) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0x7E1E + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(2, 12));

  const snn::Partition lpt =
      make_partition(net, s, snn::PartitionKind::kLpt);
  const snn::Partition ref =
      make_partition(net, s, snn::PartitionKind::kCutRefined);
  ASSERT_FALSE(ref.pass_cut_weight.empty());
  ASSERT_EQ(ref.pass_cut_weight.size(), ref.pass_min_cross_delay.size());

  // Entry 0 describes the LPT seed; the last entry the final partition.
  EXPECT_NEAR(ref.pass_cut_weight.front(), partition_cut_weight(net, lpt),
              1e-9);
  EXPECT_EQ(ref.pass_min_cross_delay.front(),
            partition_min_cross_delay(net, lpt));
  EXPECT_NEAR(ref.pass_cut_weight.back(), partition_cut_weight(net, ref),
              1e-9);
  EXPECT_EQ(ref.pass_min_cross_delay.back(),
            partition_min_cross_delay(net, ref));

  for (std::size_t i = 1; i < ref.pass_cut_weight.size(); ++i) {
    EXPECT_LE(ref.pass_cut_weight[i], ref.pass_cut_weight[i - 1])
        << "cut weight rose in pass " << i << ", seed " << seed;
    EXPECT_GE(min_cross_rank(ref.pass_min_cross_delay[i]),
              min_cross_rank(ref.pass_min_cross_delay[i - 1]))
        << "min cross delay fell in pass " << i << ", seed " << seed;
  }
}

TEST_P(CutRefinedFuzz, KeepsEveryStructuralInvariantOfThePartition) {
  // Refinement moves neurons around, so re-check exactly-once, load
  // bookkeeping, the balance cap, and determinism on the refined result.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0x17BA + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));

  const snn::Partition p =
      make_partition(net, s, snn::PartitionKind::kCutRefined);
  std::set<NeuronId> seen;
  for (std::size_t sh = 0; sh < s; ++sh) {
    ASSERT_TRUE(std::is_sorted(p.shard_neurons[sh].begin(),
                               p.shard_neurons[sh].end()));
    std::uint64_t load = 0;
    for (std::size_t k = 0; k < p.shard_neurons[sh].size(); ++k) {
      const NeuronId id = p.shard_neurons[sh][k];
      ASSERT_TRUE(seen.insert(id).second) << "neuron " << id << " twice";
      ASSERT_EQ(p.shard_of[id], sh);
      ASSERT_EQ(p.local_index[id], k);
      load += 1 + net.out_degree(id);
    }
    EXPECT_EQ(p.shard_load[sh], load) << "shard " << sh;
  }
  ASSERT_EQ(seen.size(), net.num_neurons());

  std::uint64_t total = 0;
  std::uint64_t w_max = 0;
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    const std::uint64_t w = 1 + net.out_degree(id);
    total += w;
    w_max = std::max(w_max, w);
  }
  for (std::size_t sh = 0; sh < s; ++sh) {
    EXPECT_LE(p.shard_load[sh], total / s + w_max)
        << "refined move broke the balance cap, seed " << seed;
  }

  const snn::Partition q =
      make_partition(net, s, snn::PartitionKind::kCutRefined);
  EXPECT_EQ(p.shard_of, q.shard_of);
  EXPECT_EQ(p.shard_neurons, q.shard_neurons);
  EXPECT_EQ(p.pass_cut_weight, q.pass_cut_weight);
  EXPECT_EQ(p.pass_min_cross_delay, q.pass_min_cross_delay);
}

TEST_P(CutRefinedFuzz, ShardSplitRoundTripsTheRefinedPartition) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const snn::CompiledNetwork net = random_net(seed).compile();
  Rng rng(0x5B117 + seed);
  const auto s = static_cast<std::size_t>(rng.uniform_int(1, 12));
  const snn::ShardSplit split =
      net.shard_split(make_partition(net, s, snn::PartitionKind::kCutRefined));

  using Syn = std::tuple<NeuronId, NeuronId, SynWeight, Delay>;
  std::vector<Syn> expect;
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    for (std::size_t k = net.out_begin(id); k < net.out_end(id); ++k) {
      expect.emplace_back(id, net.syn_target(k), net.syn_weight(k),
                          net.syn_delay(k));
    }
  }
  std::vector<Syn> got;
  for (std::size_t sh = 0; sh < split.shards.size(); ++sh) {
    const snn::ShardCsr& c = split.shards[sh];
    for (std::size_t k = 0; k < c.num_neurons(); ++k) {
      const NeuronId src = c.global_ids[k];
      for (std::size_t j = c.intra_offsets[k]; j < c.intra_offsets[k + 1];
           ++j) {
        got.emplace_back(src,
                         split.partition.shard_neurons[sh][c.intra_target[j]],
                         c.intra_weight[j], c.intra_delay[j]);
      }
      for (std::size_t j = c.cross_offsets[k]; j < c.cross_offsets[k + 1];
           ++j) {
        got.emplace_back(
            src,
            split.partition.shard_neurons[c.cross_shard[j]][c.cross_local[j]],
            c.cross_weight[j], c.cross_delay[j]);
      }
    }
  }
  std::sort(expect.begin(), expect.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect) << "seed " << seed << " S " << s;
  EXPECT_EQ(split.min_cross_delay,
            partition_min_cross_delay(net, split.partition));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutRefinedFuzz, ::testing::Range(0, 20));

TEST(CutRefined, LocalChainBeatsLptOnCutAndKeepsIsolatedNeurons) {
  // A chain 0→1→…→9 (delay 1) plus two isolated neurons: LPT scatters by
  // degree and cuts the chain many times; refinement must strictly reduce
  // the cut, and the isolated neurons must stay assigned exactly once.
  snn::Network net;
  for (int i = 0; i < 12; ++i) net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  for (NeuronId i = 0; i + 1 < 10; ++i) net.add_synapse(i, i + 1, 1, 1);
  const snn::CompiledNetwork compiled = net.compile();

  const snn::Partition lpt =
      make_partition(compiled, 2, snn::PartitionKind::kLpt);
  const snn::Partition ref =
      make_partition(compiled, 2, snn::PartitionKind::kCutRefined);
  EXPECT_LT(partition_cut_weight(compiled, ref),
            partition_cut_weight(compiled, lpt))
      << "refinement found no improvement on a cut-heavy chain";

  std::set<NeuronId> seen;
  for (const auto& members : ref.shard_neurons) {
    for (const NeuronId id : members) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), compiled.num_neurons());
}

TEST(CutRefined, SingleShardAndEmptyNetworkAreNoOps) {
  const snn::CompiledNetwork one = random_net(3).compile();
  const snn::Partition p1 =
      make_partition(one, 1, snn::PartitionKind::kCutRefined);
  for (NeuronId id = 0; id < one.num_neurons(); ++id) {
    EXPECT_EQ(p1.shard_of[id], 0u);
    EXPECT_EQ(p1.local_index[id], id);
  }

  snn::Network empty;
  const snn::CompiledNetwork compiled = empty.compile();
  const snn::Partition p0 =
      make_partition(compiled, 4, snn::PartitionKind::kCutRefined);
  EXPECT_TRUE(p0.shard_of.empty());
  EXPECT_EQ(p0.num_shards, 4u);
}

TEST(Partition, SingleShardIsTheIdentityLayout) {
  const snn::CompiledNetwork net = random_net(3).compile();
  const snn::Partition p = make_partition(net, 1);
  ASSERT_EQ(p.shard_neurons.size(), 1u);
  for (NeuronId id = 0; id < net.num_neurons(); ++id) {
    EXPECT_EQ(p.shard_of[id], 0u);
    EXPECT_EQ(p.local_index[id], id);
    EXPECT_EQ(p.shard_neurons[0][id], id);
  }
  // With one shard nothing crosses: the split is the whole CSR, local.
  const snn::ShardSplit split = net.shard_split(p);
  EXPECT_EQ(split.num_cross_synapses, 0u);
  EXPECT_EQ(split.min_cross_delay, 0u);
  EXPECT_EQ(split.shards[0].intra_target.size(), net.num_synapses());
}

TEST(Partition, EmptyNetwork) {
  snn::Network net;
  const snn::CompiledNetwork compiled = net.compile();
  const snn::Partition p = make_partition(compiled, 4);
  EXPECT_EQ(p.num_shards, 4u);
  EXPECT_TRUE(p.shard_of.empty());
  for (const auto& members : p.shard_neurons) EXPECT_TRUE(members.empty());
  const snn::ShardSplit split = compiled.shard_split(p);
  EXPECT_EQ(split.shards.size(), 4u);
  EXPECT_EQ(split.num_cross_synapses, 0u);
}

TEST(Partition, SingleNeuronWithSelfLoop) {
  snn::Network net;
  net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  net.add_synapse(0, 0, 1, 5);
  const snn::CompiledNetwork compiled = net.compile();
  const snn::Partition p = make_partition(compiled, 3);
  EXPECT_EQ(p.shard_of[0], 0u);  // lightest-shard tie breaks low
  const snn::ShardSplit split = compiled.shard_split(p);
  // The self-loop is intra-shard wherever the neuron lands.
  EXPECT_EQ(split.num_cross_synapses, 0u);
  EXPECT_EQ(split.shards[0].intra_target.size(), 1u);
  EXPECT_EQ(split.shards[0].intra_target[0], 0u);
}

TEST(Partition, RejectsMismatchedPartition) {
  const snn::CompiledNetwork a = random_net(1).compile();
  const snn::CompiledNetwork b = random_net(2).compile();
  if (a.num_neurons() == b.num_neurons()) GTEST_SKIP();
  EXPECT_THROW(b.shard_split(make_partition(a, 2)), std::runtime_error);
}

}  // namespace
}  // namespace sga
