// Tests for the DISTANCE model (Definition 5, Section 6): lattice geometry,
// machine accounting, correctness of the instrumented algorithms, and the
// Theorem 6.1 / 6.2 lower bounds holding against measured costs with the
// right asymptotic shape.
#include <gtest/gtest.h>

#include "analysis/fit.h"
#include "core/random.h"
#include "distmodel/algos.h"
#include "distmodel/bounds.h"
#include "distmodel/lattice.h"
#include "distmodel/machine.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"

namespace sga::distmodel {
namespace {

TEST(Lattice, L1Distance) {
  EXPECT_EQ(l1_distance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(l1_distance({-2, 5}, {1, 5}), 3);
}

TEST(Lattice, WordPointsAreRowMajorAndDistinct) {
  const Lattice lat(20, 2, RegisterPlacement::kCorner);
  EXPECT_EQ(lat.side(), 5u);  // ceil(sqrt(20))
  std::set<std::pair<std::int64_t, std::int64_t>> points;
  for (std::size_t a = 0; a < 20; ++a) {
    const Point p = lat.word_point(a);
    EXPECT_TRUE(points.emplace(p.x, p.y).second);
    EXPECT_GE(p.x, 0);
    EXPECT_LT(p.x, 5);
  }
  EXPECT_THROW(lat.word_point(20), InvalidArgument);
}

TEST(Lattice, NearestRegisterDistance) {
  const Lattice lat(16, 1, RegisterPlacement::kCorner);  // register at (0,-1)
  EXPECT_EQ(lat.distance_to_nearest_register(0), 1);     // (0,0)
  EXPECT_EQ(lat.distance_to_nearest_register(15), 7);    // (3,3): 3+4
}

TEST(Lattice, CenterBeatsCornerOnAverage) {
  const Lattice center(4096, 4, RegisterPlacement::kCenter);
  const Lattice corner(4096, 4, RegisterPlacement::kCorner);
  EXPECT_LT(exact_scan_floor(center), exact_scan_floor(corner));
}

TEST(Machine, ChargesL1OnMissAndZeroOnHit) {
  // One register at (0, -1); word 15 sits at (3, 3): distance 3 + 4 = 7.
  DistanceMachine mach(1, 16, RegisterPlacement::kCorner);
  const Addr a = mach.allocate("x", 16);
  mach.poke(a + 15, 42);
  EXPECT_EQ(mach.read(a + 15), 42);  // miss: distance 7
  EXPECT_EQ(mach.stats().movement_cost, 7u);
  EXPECT_EQ(mach.read(a + 15), 42);  // hit
  EXPECT_EQ(mach.stats().movement_cost, 7u);
  EXPECT_EQ(mach.stats().register_hits, 1u);
}

TEST(Machine, LruEvictionCausesRecharges) {
  // Registers at (0,-1) and (1,-1); nearest-register distances:
  // word 15 @ (3,3): 6, word 14 @ (2,3): 5, word 13 @ (1,3): 4.
  DistanceMachine mach(2, 16, RegisterPlacement::kCorner);
  const Addr a = mach.allocate("x", 16);
  mach.read(a + 15);  // cost 6
  mach.read(a + 14);  // cost 5
  mach.read(a + 13);  // evicts a+15; cost 4
  const auto before = mach.stats().movement_cost;
  EXPECT_EQ(before, 15u);
  mach.read(a + 15);  // recharged: 6 again
  EXPECT_EQ(mach.stats().movement_cost, before + 6);
}

TEST(Machine, WriteChargesReturnTrip) {
  DistanceMachine mach(1, 16, RegisterPlacement::kCorner);
  const Addr a = mach.allocate("x", 16);
  mach.write(a + 15, 9);
  EXPECT_EQ(mach.stats().movement_cost, 7u);  // register -> home point
  EXPECT_EQ(mach.peek(a + 15), 9);
  EXPECT_EQ(mach.read(a + 15), 9);  // now resident: free
  EXPECT_EQ(mach.stats().movement_cost, 7u);
}

TEST(Machine, AllocationBounds) {
  DistanceMachine mach(1, 8);
  mach.allocate("a", 8);
  EXPECT_THROW(mach.allocate("b", 1), InvalidArgument);
  EXPECT_THROW(mach.read(99), InvalidArgument);
}

TEST(ScanInput, CostAtLeastExactFloorAndBound) {
  for (const std::size_t m : {256u, 1024u, 4096u}) {
    const auto run = scan_input(m, 4, RegisterPlacement::kCenter);
    const Lattice lat(m, 4, RegisterPlacement::kCenter);
    // A single streaming pass cannot beat the sum of nearest-register
    // distances, and Theorem 6.1's closed form sits below that.
    EXPECT_GE(run.machine.movement_cost, exact_scan_floor(lat));
    EXPECT_GE(static_cast<double>(run.machine.movement_cost),
              theorem61_bound(m, 4));
  }
}

TEST(ScanInput, ShapeIsMToTheThreeHalves) {
  std::vector<double> sizes, costs;
  for (const std::size_t m : {1u << 8, 1u << 10, 1u << 12, 1u << 14}) {
    sizes.push_back(static_cast<double>(m));
    costs.push_back(static_cast<double>(
        scan_input(m, 4, RegisterPlacement::kCenter).machine.movement_cost));
  }
  const auto check = analysis::check_power_law(sizes, costs, 1.5, 0.1);
  EXPECT_TRUE(check.ok) << analysis::describe(check);
}

TEST(ScanInput, BoundHoldsForEveryPlacement) {
  for (const auto placement :
       {RegisterPlacement::kCenter, RegisterPlacement::kCorner,
        RegisterPlacement::kScattered}) {
    const auto run = scan_input(2048, 2, placement);
    EXPECT_GE(static_cast<double>(run.machine.movement_cost),
              theorem61_bound(2048, 2));
  }
}

TEST(BellmanFordDistance, ComputesCorrectDistances) {
  Rng rng(0xD157);
  const Graph g = make_random_graph(20, 80, {1, 9}, rng);
  const auto ref = bellman_ford_khop(g, 0, 5);
  const auto run = bellman_ford_khop_distance(g, 0, 5, 8,
                                              RegisterPlacement::kCenter);
  EXPECT_EQ(run.dist, ref.dist);
}

TEST(BellmanFordDistance, MovementBeatsTheorem62Bound) {
  Rng rng(0xD158);
  const Graph g = make_random_graph(32, 256, {1, 5}, rng);
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    const auto run =
        bellman_ford_khop_distance(g, 0, k, 4, RegisterPlacement::kCenter);
    EXPECT_GE(static_cast<double>(run.machine.movement_cost),
              theorem62_bound(k, 256, 4))
        << "k=" << k;
  }
}

TEST(BellmanFordDistance, MovementScalesLinearlyInK) {
  // Early rounds are cheaper (unreached sources skip the relaxation body),
  // so check the *marginal* per-round cost: once every vertex is reached,
  // doubling k must double the added movement.
  Rng rng(0xD159);
  const Graph g = make_random_graph(32, 256, {1, 5}, rng);
  auto cost = [&](std::uint32_t k) {
    return static_cast<double>(
        bellman_ford_khop_distance(g, 0, k, 4, RegisterPlacement::kCenter)
            .machine.movement_cost);
  };
  const double inc1 = cost(16) - cost(8);
  const double inc2 = cost(32) - cost(16);
  EXPECT_NEAR(inc2 / inc1, 2.0, 0.15);
}

TEST(DijkstraDistance, ComputesCorrectDistances) {
  Rng rng(0xD15A);
  const Graph g = make_random_graph(24, 100, {1, 7}, rng);
  const auto ref = dijkstra(g, 0);
  const auto run = dijkstra_distance(g, 0, 8, RegisterPlacement::kCenter);
  EXPECT_EQ(run.dist, ref.dist);
}

TEST(DijkstraDistance, MovementBeatsInputReadBound) {
  Rng rng(0xD15B);
  const Graph g = make_random_graph(32, 256, {1, 5}, rng);
  const auto run = dijkstra_distance(g, 0, 4, RegisterPlacement::kCenter);
  // The CSR input alone is 2m + n + 1 > m words.
  EXPECT_GE(static_cast<double>(run.machine.movement_cost),
            theorem61_bound(256, 4));
}

TEST(MatvecDistance, ComputesCorrectProductAndCubicMovement) {
  // Correctness: compare against a plain recomputation with the same
  // deterministic fill.
  const auto run = matvec_distance(12, 4, RegisterPlacement::kCenter, 99);
  std::uint64_t state = 99;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<Word>((state >> 33) % 7);
  };
  std::vector<Word> a(12 * 12), x(12);
  for (auto& v : a) v = next();
  for (auto& v : x) v = next();
  for (std::size_t i = 0; i < 12; ++i) {
    Word acc = 0;
    for (std::size_t j = 0; j < 12; ++j) acc += a[i * 12 + j] * x[j];
    EXPECT_EQ(run.dist[i], acc) << "row " << i;
  }
  EXPECT_EQ(run.ops, 144u);

  // Movement shape: Θ(n³) — the Section 2.3 claim.
  std::vector<double> ns, costs;
  for (const std::size_t n : {16u, 32u, 64u}) {
    ns.push_back(static_cast<double>(n));
    costs.push_back(static_cast<double>(
        matvec_distance(n, 4, RegisterPlacement::kCenter)
            .machine.movement_cost));
  }
  const auto check = analysis::check_power_law(ns, costs, 3.0, 0.2);
  EXPECT_TRUE(check.ok) << analysis::describe(check);
}

TEST(Bounds, ClosedFormsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(theorem61_bound(64, 1), 64.0 * 8.0 / 8.0);  // m^1.5/8
  EXPECT_DOUBLE_EQ(theorem62_bound(5, 64, 1), 5 * theorem61_bound(64, 1));
  EXPECT_LT(theorem61_bound(1024, 16), theorem61_bound(1024, 1));
  EXPECT_LT(bound_3d(1 << 12, 1), theorem61_bound(1 << 12, 1));  // 4/3 < 3/2
}

TEST(Lattice3, GeometryAndFloor) {
  const Lattice3 lat(27, 1);
  EXPECT_EQ(lat.side(), 3u);
  // Register at the cube centre (1,1,1); corner word 0 at (0,0,0): dist 3.
  EXPECT_EQ(lat.distance_to_nearest_register(0), 3);
  EXPECT_EQ(lat.distance_to_nearest_register(13), 0);  // (1,1,1)
  EXPECT_THROW(lat.word_point(27), InvalidArgument);
}

TEST(Lattice3, ScanFloorHasFourThirdsShape) {
  // The paper's 3-D remark: the unavoidable movement to read m words in 3-D
  // scales as m^{4/3}, strictly below the 2-D m^{3/2}.
  std::vector<double> ms, floors;
  for (const std::size_t m : {1u << 9, 1u << 12, 1u << 15, 1u << 18}) {
    const Lattice3 lat(m, 4);
    ms.push_back(static_cast<double>(m));
    floors.push_back(static_cast<double>(exact_scan_floor_3d(lat)));
  }
  const auto check = analysis::check_power_law(ms, floors, 4.0 / 3.0, 0.05);
  EXPECT_TRUE(check.ok) << analysis::describe(check);
  // 3-D floor < 2-D floor at equal m.
  const Lattice two_d(1 << 12, 4, RegisterPlacement::kCenter);
  const Lattice3 three_d(1 << 12, 4);
  EXPECT_LT(exact_scan_floor_3d(three_d), exact_scan_floor(two_d));
  // And the paper's closed-form 3-D bound sits below the exact floor.
  EXPECT_LE(bound_3d(1 << 12, 4),
            static_cast<double>(exact_scan_floor_3d(three_d)));
}

}  // namespace
}  // namespace sga::distmodel
