// Golden-trace determinism: one small fixed network, fixed input, and the
// exact spike trace checked in as a literal. Every engine — serial
// calendar queue, serial map queue, the reference interpreter, and the
// sharded parallel simulator at several shard/thread counts — must
// reproduce it byte for byte, run after run, machine after machine. A
// failure here means an engine's event ORDER semantics drifted, which the
// statistical fuzz suites could mask.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "snn/network.h"
#include "snn/parallel_sim.h"
#include "snn/reference_sim.h"
#include "snn/simulator.h"

namespace sga {
namespace {

/// Fixed 7-neuron network: an excitation chain, a coincidence gate, a
/// leaky integrator, a slow accumulator, a long-delay feedback loop, and
/// inhibition — one of everything the engines must order identically.
snn::Network golden_network() {
  snn::Network net;
  net.add_neuron({0, 1, 0.0});   // 0: relay
  net.add_neuron({0, 2, 0.0});   // 1: coincidence (needs 2 units)
  net.add_neuron({-1, 1, 0.5});  // 2: leaky integrator
  net.add_neuron({0, 1, 1.0});   // 3: full-decay gate
  net.add_neuron({0, 3, 0.0});   // 4: slow accumulator
  net.add_neuron({0, 1, 0.0});   // 5: relay with self-inhibition
  net.add_neuron({0, 2, 0.0});   // 6: sink
  net.add_synapse(0, 1, 1, 2);
  net.add_synapse(0, 2, 1, 3);
  net.add_synapse(0, 4, 1, 1);
  net.add_synapse(1, 3, 1, 1);
  net.add_synapse(2, 1, 1, 1);
  net.add_synapse(2, 4, 2, 5);
  net.add_synapse(3, 6, 2, 4);
  net.add_synapse(4, 5, 1, 2);
  net.add_synapse(5, 0, 1, 70);  // long feedback re-fires the chain head
  net.add_synapse(5, 5, -3, 1);
  net.add_synapse(6, 2, -2, 1);
  return net;
}

constexpr Time kGoldenMaxTime = 300;

/// The exact canonical (time, neuron) spike trace of golden_network()
/// under inject(0 @ 0), inject(2 @ 4). CHECKED-IN CONTRACT: regenerate
/// only for a deliberate, documented semantics change.
const std::vector<std::pair<Time, NeuronId>>& golden_trace() {
  static const std::vector<std::pair<Time, NeuronId>> kTrace = {
      {0, 0}, {4, 2}, {5, 1}, {6, 3}, {9, 4}, {10, 6}, {11, 5}, {81, 0},
  };
  return kTrace;
}

const std::vector<Time>& golden_first_spikes() {
  static const std::vector<Time> kFirst = {0, 5, 4, 6, 9, 11, 10};
  return kFirst;
}

const std::vector<NeuronId>& golden_causes() {
  static const std::vector<NeuronId> kCauses = {
      kNoNeuron, 2, kNoNeuron, 1, 2, 4, 3,
  };
  return kCauses;
}

snn::SimConfig golden_config() {
  snn::SimConfig cfg;
  cfg.max_time = kGoldenMaxTime;
  cfg.record_spike_log = true;
  cfg.record_causes = true;
  return cfg;
}

template <typename Sim>
snn::SimStats drive(Sim& sim) {
  sim.inject_spike(0, 0);
  sim.inject_spike(2, 4);
  return sim.run(golden_config());
}

void expect_golden(const std::vector<std::pair<Time, NeuronId>>& log,
                   const std::vector<Time>& first,
                   const snn::SimStats& stats) {
  EXPECT_EQ(log, golden_trace());
  EXPECT_EQ(first, golden_first_spikes());
  EXPECT_EQ(stats.spikes, 8u);
  EXPECT_EQ(stats.deliveries, 14u);
  EXPECT_EQ(stats.event_times, 15u);
  EXPECT_EQ(stats.end_time, 84);
}

TEST(GoldenTrace, SerialCalendarQueue) {
  snn::Simulator sim(golden_network());
  const snn::SimStats stats = drive(sim);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());  // canonical order
  expect_golden(log, sim.first_spikes(), stats);
  for (NeuronId id = 0; id < 7; ++id) {
    EXPECT_EQ(sim.first_spike_cause(id), golden_causes()[id])
        << "neuron " << id;
  }
}

TEST(GoldenTrace, SerialMapQueue) {
  snn::Simulator sim(golden_network(), snn::QueueKind::kMap);
  const snn::SimStats stats = drive(sim);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());
  expect_golden(log, sim.first_spikes(), stats);
}

TEST(GoldenTrace, ReferenceInterpreter) {
  const snn::Network net = golden_network();
  snn::ReferenceSimulator sim(net);
  sim.inject_spike(0, 0);
  sim.inject_spike(2, 4);
  snn::SimConfig cfg = golden_config();
  cfg.record_causes = false;  // the reference doesn't implement causes
  const snn::SimStats stats = sim.run(cfg);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());
  expect_golden(log, sim.first_spikes(), stats);
}

TEST(GoldenTrace, ParallelAtEveryShardCount) {
  const snn::CompiledNetwork compiled = golden_network().compile();
  for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE(::testing::Message() << "S " << shards << " threads "
                                        << threads);
      snn::ParallelConfig pcfg;
      pcfg.num_shards = shards;
      pcfg.num_threads = threads;
      snn::ParallelSimulator sim(compiled, pcfg);
      const snn::SimStats stats = drive(sim);
      expect_golden(sim.spike_log(), sim.first_spikes(), stats);
      for (NeuronId id = 0; id < 7; ++id) {
        EXPECT_EQ(sim.first_spike_cause(id), golden_causes()[id])
            << "neuron " << id;
      }
    }
  }
}

TEST(GoldenTrace, ParallelResetReproducesTheTrace) {
  // Determinism across reset() reuse: the second and third runs replay
  // the identical trace.
  snn::ParallelConfig pcfg;
  pcfg.num_shards = 3;
  pcfg.num_threads = 2;
  snn::ParallelSimulator sim(golden_network(), pcfg);
  for (int round = 0; round < 3; ++round) {
    if (round > 0) sim.reset();
    const snn::SimStats stats = drive(sim);
    expect_golden(sim.spike_log(), sim.first_spikes(), stats);
  }
}

}  // namespace
}  // namespace sga
