// Golden-trace determinism: one small fixed network, fixed input, and the
// exact spike trace checked in as a literal. Every engine — serial
// calendar queue, serial map queue, the reference interpreter, and the
// sharded parallel simulator at several shard/thread counts — must
// reproduce it byte for byte, run after run, machine after machine. A
// failure here means an engine's event ORDER semantics drifted, which the
// statistical fuzz suites could mask.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "snn/network.h"
#include "snn/parallel_sim.h"
#include "snn/reference_sim.h"
#include "snn/simulator.h"

namespace sga {
namespace {

/// Fixed 7-neuron network: an excitation chain, a coincidence gate, a
/// leaky integrator, a slow accumulator, a long-delay feedback loop, and
/// inhibition — one of everything the engines must order identically.
snn::Network golden_network() {
  snn::Network net;
  net.add_neuron({0, 1, 0.0});   // 0: relay
  net.add_neuron({0, 2, 0.0});   // 1: coincidence (needs 2 units)
  net.add_neuron({-1, 1, 0.5});  // 2: leaky integrator
  net.add_neuron({0, 1, 1.0});   // 3: full-decay gate
  net.add_neuron({0, 3, 0.0});   // 4: slow accumulator
  net.add_neuron({0, 1, 0.0});   // 5: relay with self-inhibition
  net.add_neuron({0, 2, 0.0});   // 6: sink
  net.add_synapse(0, 1, 1, 2);
  net.add_synapse(0, 2, 1, 3);
  net.add_synapse(0, 4, 1, 1);
  net.add_synapse(1, 3, 1, 1);
  net.add_synapse(2, 1, 1, 1);
  net.add_synapse(2, 4, 2, 5);
  net.add_synapse(3, 6, 2, 4);
  net.add_synapse(4, 5, 1, 2);
  net.add_synapse(5, 0, 1, 70);  // long feedback re-fires the chain head
  net.add_synapse(5, 5, -3, 1);
  net.add_synapse(6, 2, -2, 1);
  return net;
}

constexpr Time kGoldenMaxTime = 300;

/// The exact canonical (time, neuron) spike trace of golden_network()
/// under inject(0 @ 0), inject(2 @ 4). CHECKED-IN CONTRACT: regenerate
/// only for a deliberate, documented semantics change.
const std::vector<std::pair<Time, NeuronId>>& golden_trace() {
  static const std::vector<std::pair<Time, NeuronId>> kTrace = {
      {0, 0}, {4, 2}, {5, 1}, {6, 3}, {9, 4}, {10, 6}, {11, 5}, {81, 0},
  };
  return kTrace;
}

const std::vector<Time>& golden_first_spikes() {
  static const std::vector<Time> kFirst = {0, 5, 4, 6, 9, 11, 10};
  return kFirst;
}

const std::vector<NeuronId>& golden_causes() {
  static const std::vector<NeuronId> kCauses = {
      kNoNeuron, 2, kNoNeuron, 1, 2, 4, 3,
  };
  return kCauses;
}

snn::SimConfig golden_config() {
  snn::SimConfig cfg;
  cfg.max_time = kGoldenMaxTime;
  cfg.record_spike_log = true;
  cfg.record_causes = true;
  return cfg;
}

template <typename Sim>
snn::SimStats drive(Sim& sim) {
  sim.inject_spike(0, 0);
  sim.inject_spike(2, 4);
  return sim.run(golden_config());
}

void expect_golden(const std::vector<std::pair<Time, NeuronId>>& log,
                   const std::vector<Time>& first,
                   const snn::SimStats& stats) {
  EXPECT_EQ(log, golden_trace());
  EXPECT_EQ(first, golden_first_spikes());
  EXPECT_EQ(stats.spikes, 8u);
  EXPECT_EQ(stats.deliveries, 14u);
  EXPECT_EQ(stats.event_times, 15u);
  EXPECT_EQ(stats.end_time, 84);
}

TEST(GoldenTrace, SerialCalendarQueue) {
  snn::Simulator sim(golden_network());
  const snn::SimStats stats = drive(sim);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());  // canonical order
  expect_golden(log, sim.first_spikes(), stats);
  for (NeuronId id = 0; id < 7; ++id) {
    EXPECT_EQ(sim.first_spike_cause(id), golden_causes()[id])
        << "neuron " << id;
  }
}

TEST(GoldenTrace, SerialMapQueue) {
  snn::Simulator sim(golden_network(), snn::QueueKind::kMap);
  const snn::SimStats stats = drive(sim);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());
  expect_golden(log, sim.first_spikes(), stats);
}

TEST(GoldenTrace, ReferenceInterpreter) {
  const snn::Network net = golden_network();
  snn::ReferenceSimulator sim(net);
  sim.inject_spike(0, 0);
  sim.inject_spike(2, 4);
  snn::SimConfig cfg = golden_config();
  cfg.record_causes = false;  // the reference doesn't implement causes
  const snn::SimStats stats = sim.run(cfg);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());
  expect_golden(log, sim.first_spikes(), stats);
}

TEST(GoldenTrace, ParallelAtEveryShardCount) {
  const snn::CompiledNetwork compiled = golden_network().compile();
  for (const std::size_t shards : {1u, 2u, 3u, 7u}) {
    for (const unsigned threads : {1u, 2u, 4u}) {
      SCOPED_TRACE(::testing::Message() << "S " << shards << " threads "
                                        << threads);
      snn::ParallelConfig pcfg;
      pcfg.num_shards = shards;
      pcfg.num_threads = threads;
      snn::ParallelSimulator sim(compiled, pcfg);
      const snn::SimStats stats = drive(sim);
      expect_golden(sim.spike_log(), sim.first_spikes(), stats);
      for (NeuronId id = 0; id < 7; ++id) {
        EXPECT_EQ(sim.first_spike_cause(id), golden_causes()[id])
            << "neuron " << id;
      }
    }
  }
}

TEST(GoldenTrace, ParallelResetReproducesTheTrace) {
  // Determinism across reset() reuse: the second and third runs replay
  // the identical trace.
  snn::ParallelConfig pcfg;
  pcfg.num_shards = 3;
  pcfg.num_threads = 2;
  snn::ParallelSimulator sim(golden_network(), pcfg);
  for (int round = 0; round < 3; ++round) {
    if (round > 0) sim.reset();
    const snn::SimStats stats = drive(sim);
    expect_golden(sim.spike_log(), sim.first_spikes(), stats);
  }
}

/// Skewed 4-neuron instance for the work-stealing golden test: neuron i
/// lives on shard i under kLpt at S = 4 (equal out-degrees round-robin),
/// each neuron carries a self-inhibition loop (delay 1) and a long-delay
/// ring edge i → (i+1) mod 4 (delay 100, so δ = 100 windows). Injection
/// bursts land on shards 0 and 2 — both statically owned by worker 0 of 2
/// — so the first window sees static estimates {15, 1, 15, 1}: worker 0
/// holds 30 against an LPT re-deal max of 16, exceeding the 1.5× skew
/// threshold and provably triggering a steal.
snn::Network skewed_network() {
  snn::Network net;
  for (int i = 0; i < 4; ++i) net.add_neuron({0, 1, 0.0});
  for (NeuronId i = 0; i < 4; ++i) {
    net.add_synapse(i, i, -3, 1);                // self-inhibition
    net.add_synapse(i, (i + 1) % 4, 1, 100);     // slow ring
  }
  return net;
}

template <typename Sim>
snn::SimStats drive_skewed(Sim& sim) {
  for (Time t = 0; t < 15; ++t) {
    sim.inject_spike(0, t);
    sim.inject_spike(2, t);
  }
  sim.inject_spike(1, 0);
  sim.inject_spike(3, 0);
  snn::SimConfig cfg;
  cfg.max_time = 250;
  cfg.record_spike_log = true;
  return sim.run(cfg);
}

/// The exact canonical trace of skewed_network() under drive_skewed().
/// CHECKED-IN CONTRACT, like golden_trace(): the injection bursts fire 0
/// and 2 every tick through t = 14, the slow ring then wakes 1 and 3 at
/// 103/107/111 (three +1 arrivals against one −3 self-inhibition) and
/// finally re-fires 0 and 2 at 211.
const std::vector<std::pair<Time, NeuronId>>& skewed_trace() {
  static const std::vector<std::pair<Time, NeuronId>> kTrace = [] {
    std::vector<std::pair<Time, NeuronId>> t;
    for (Time tick = 0; tick < 15; ++tick) {
      t.push_back({tick, 0});
      t.push_back({tick, 2});
    }
    t.insert(t.begin() + 2, {{0, 1}, {0, 3}});
    for (const Time tick : {103, 107, 111}) {
      t.push_back({tick, 1});
      t.push_back({tick, 3});
    }
    t.push_back({211, 0});
    t.push_back({211, 2});
    std::sort(t.begin(), t.end());
    return t;
  }();
  return kTrace;
}

void expect_skewed(const std::vector<std::pair<Time, NeuronId>>& log,
                   const snn::SimStats& stats) {
  EXPECT_EQ(log, skewed_trace());
  EXPECT_EQ(stats.spikes, 40u);
  EXPECT_EQ(stats.deliveries, 78u);
  EXPECT_EQ(stats.event_times, 35u);
  EXPECT_EQ(stats.end_time, 212);
}

TEST(GoldenTrace, SerialReproducesTheSkewedTrace) {
  snn::Simulator sim(skewed_network());
  const snn::SimStats stats = drive_skewed(sim);
  auto log = sim.spike_log();
  std::sort(log.begin(), log.end());
  expect_skewed(log, stats);
}

TEST(GoldenTrace, WorkStealingFiresAndPreservesTheSkewedTrace) {
  // The determinism contract for stealing (ISSUE 9): on this instance the
  // re-deal provably triggers (worker 0's static shards {0, 2} hold 30 of
  // 32 first-window events, LPT re-deal max is 16, 30 > 1.5 × 16), the
  // steal count is a pure function of the run, and the trace is untouched
  // — run after run, engine after engine, with and across reset() reuse.
  for (const snn::EngineKind engine :
       {snn::EngineKind::kMailbox, snn::EngineKind::kSharedAtomic}) {
    SCOPED_TRACE(::testing::Message()
                 << "engine "
                 << (engine == snn::EngineKind::kMailbox ? "mailbox"
                                                         : "atomic"));
    snn::ParallelConfig pcfg;
    pcfg.num_shards = 4;
    pcfg.num_threads = 2;
    pcfg.partition = snn::PartitionKind::kLpt;  // pins neuron i → shard i
    pcfg.engine = engine;
    ASSERT_TRUE(pcfg.work_stealing);  // stealing is the default
    snn::ParallelSimulator sim(skewed_network(), pcfg);

    std::uint64_t first_steals = 0;
    for (int round = 0; round < 3; ++round) {
      if (round > 0) sim.reset();
      const std::uint64_t before = sim.steals();
      const snn::SimStats stats = drive_skewed(sim);
      expect_skewed(sim.spike_log(), stats);
      const std::uint64_t got = sim.steals() - before;
      EXPECT_GT(got, 0u) << "skewed instance failed to trigger a steal";
      EXPECT_GE(sim.max_skew(), 1.5);
      if (round == 0) {
        first_steals = got;
      } else {
        EXPECT_EQ(got, first_steals) << "steal count drifted on round "
                                     << round;
      }
    }
  }
}

TEST(GoldenTrace, StealingOffMatchesStealingOnEventForEvent) {
  snn::ParallelConfig pcfg;
  pcfg.num_shards = 4;
  pcfg.num_threads = 2;
  pcfg.partition = snn::PartitionKind::kLpt;
  pcfg.work_stealing = false;
  snn::ParallelSimulator sim(skewed_network(), pcfg);
  const snn::SimStats stats = drive_skewed(sim);
  expect_skewed(sim.spike_log(), stats);
  EXPECT_EQ(sim.steals(), 0u);
}

}  // namespace
}  // namespace sga
