// Freeze-time width-narrowed CSR storage (ARCHITECTURE.md §1.8): width
// selection rules, the kWide escape hatch, streamed generator-to-CSR
// builds matching the builder freeze bit-for-bit, and the freeze-time
// validation messages that name the offending neuron/synapse.
#include <gtest/gtest.h>

#include <functional>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "core/random.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "snn/network.h"
#include "snn/simulator.h"
#include "snn/storage.h"

namespace sga {
namespace {

using snn::CompiledNetwork;
using snn::Network;
using snn::StoragePolicy;
using snn::StorageWidths;

Network tiny_net(Delay max_delay, SynWeight w = 1.0) {
  Network net;
  for (int i = 0; i < 3; ++i) net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  net.add_synapse(0, 1, w, 1);
  net.add_synapse(1, 2, w, max_delay);
  return net;
}

TEST(StorageWidthsTest, SmallNetworkNarrowsToTheFloor) {
  const CompiledNetwork c = tiny_net(5).compile();
  const StorageWidths& w = c.storage_widths();
  EXPECT_TRUE(w.narrow);
  EXPECT_EQ(w.target_bytes, 2u);   // n = 3 fits u16
  EXPECT_EQ(w.delay_bytes, 1u);    // max delay 5 fits u8
  EXPECT_EQ(w.weight_bytes, 4u);   // 1.0 round-trips f32
  EXPECT_EQ(w.seg_index_bytes, 4u);
}

TEST(StorageWidthsTest, DelayPastU8WidensTheDelayColumnOnly) {
  const CompiledNetwork c = tiny_net(300).compile();
  EXPECT_TRUE(c.storage_widths().narrow);
  EXPECT_EQ(c.storage_widths().delay_bytes, 2u);
  EXPECT_EQ(c.storage_widths().target_bytes, 2u);
}

TEST(StorageWidthsTest, DelayPastU16ForcesWide) {
  const CompiledNetwork c = tiny_net(70000).compile();
  EXPECT_FALSE(c.storage_widths().narrow);
  EXPECT_EQ(c.storage_widths().delay_bytes, sizeof(Delay));
}

TEST(StorageWidthsTest, ManyNeuronsWidenTargetsToU32) {
  Network net;
  const std::size_t n = (1u << 16) + 5;
  for (std::size_t i = 0; i < n; ++i) net.add_threshold_neuron(1);
  net.add_synapse(0, static_cast<NeuronId>(n - 1), 1, 2);
  const CompiledNetwork c = net.compile();
  EXPECT_TRUE(c.storage_widths().narrow);
  EXPECT_EQ(c.storage_widths().target_bytes, 4u);
  EXPECT_EQ(c.storage_widths().delay_bytes, 1u);
}

TEST(StorageWidthsTest, WidePolicyIsAnEscapeHatch) {
  const CompiledNetwork c = tiny_net(5).compile(StoragePolicy::kWide);
  EXPECT_FALSE(c.storage_widths().narrow);
  EXPECT_EQ(c.storage_widths().target_bytes, sizeof(NeuronId));
  EXPECT_EQ(c.storage_widths().weight_bytes, sizeof(SynWeight));
  c.verify_invariants();
}

TEST(StorageWidthsTest, NarrowFreezeIsSubstantiallySmaller) {
  // The acceptance bar: on a real SSSP fabric the narrow freeze must be at
  // least 30% smaller than the wide oracle layout.
  Rng rng(0x51AE);
  const Graph g = make_random_graph(500, 4000, {1, 12}, rng);
  const Network net = nga::build_sssp_network(g);
  const CompiledNetwork narrow = net.compile();
  const CompiledNetwork wide = net.compile(StoragePolicy::kWide);
  ASSERT_TRUE(narrow.storage_widths().narrow);
  ASSERT_FALSE(wide.storage_widths().narrow);
  EXPECT_LE(static_cast<double>(narrow.csr_storage_bytes()),
            0.7 * static_cast<double>(wide.csr_storage_bytes()))
      << "narrow " << narrow.csr_storage_bytes() << " wide "
      << wide.csr_storage_bytes();
  EXPECT_GT(narrow.bytes_per_synapse(), 0.0);
  EXPECT_LT(narrow.bytes_per_synapse(), wide.bytes_per_synapse());
}

TEST(StorageWidthsTest, SimStatsReportTheFrozenFootprint) {
  const CompiledNetwork c = tiny_net(5).compile();
  snn::Simulator sim(c);
  sim.inject_spike(0, 0);
  const snn::SimStats stats = sim.run();
  EXPECT_EQ(stats.csr_bytes, c.csr_storage_bytes());
  sim.reset();
  sim.inject_spike(0, 0);
  EXPECT_EQ(sim.run().csr_bytes, c.csr_storage_bytes());
}

// ---- Streamed builds ----------------------------------------------------

TEST(StreamCompileTest, StreamedFreezeMatchesBuilderFreezeExactly) {
  // The same relay-chain edges through both paths: compile_sssp_streamed
  // must reproduce the builder freeze synapse-for-synapse (same CSR
  // packing) and event-for-event (same SSSP run).
  const std::size_t n = 200;
  const std::uint64_t seed = 0xBEE5;
  auto edges = [&](const EdgeStream& emit) {
    stream_relay_chain(n, 3, 20, {1, 9}, seed, emit);
  };

  // Builder path: materialize the same edges into a Graph.
  Graph g(n);
  edges([&](VertexId u, VertexId v, Weight w) { g.add_edge(u, v, w); });
  const CompiledNetwork built = nga::build_sssp_network(g).compile();

  snn::StreamBuildStats bs;
  const CompiledNetwork streamed =
      nga::compile_sssp_streamed(n, edges, StoragePolicy::kAuto, &bs);
  streamed.verify_invariants();

  EXPECT_EQ(bs.num_neurons, n);
  EXPECT_EQ(bs.num_synapses, streamed.num_synapses());
  EXPECT_EQ(bs.csr_bytes, streamed.csr_storage_bytes());
  EXPECT_GE(bs.peak_resident_bytes, bs.csr_bytes);

  ASSERT_EQ(streamed.num_neurons(), built.num_neurons());
  ASSERT_EQ(streamed.num_synapses(), built.num_synapses());
  EXPECT_EQ(streamed.max_delay(), built.max_delay());
  EXPECT_EQ(streamed.storage_widths(), built.storage_widths());
  for (NeuronId i = 0; i < n; ++i) {
    ASSERT_EQ(streamed.out_begin(i), built.out_begin(i)) << "neuron " << i;
    ASSERT_EQ(streamed.seg_begin(i), built.seg_begin(i)) << "neuron " << i;
    EXPECT_DOUBLE_EQ(streamed.positive_in_weight(i),
                     built.positive_in_weight(i))
        << "neuron " << i;
  }
  for (std::size_t k = 0; k < built.num_synapses(); ++k) {
    ASSERT_EQ(streamed.syn_target(k), built.syn_target(k)) << "syn " << k;
    ASSERT_EQ(streamed.syn_weight(k), built.syn_weight(k)) << "syn " << k;
    ASSERT_EQ(streamed.syn_delay(k), built.syn_delay(k)) << "syn " << k;
  }

  auto run = [](const CompiledNetwork& net) {
    snn::Simulator sim(net);
    sim.inject_spike(0, 0);
    snn::SimConfig cfg;
    cfg.record_spike_log = true;
    sim.run(cfg);
    return sim.spike_log();
  };
  EXPECT_EQ(run(streamed), run(built));

  // And the run solves SSSP: first-spike times equal Dijkstra distances.
  const auto ref = dijkstra(g, 0);
  snn::Simulator sim(streamed);
  sim.inject_spike(0, 0);
  sim.run();
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(sim.first_spike(v), static_cast<Time>(ref.dist[v]))
        << "vertex " << v;
  }
}

TEST(StreamCompileTest, GridAndRmatStreamsFreezeAndVerify) {
  {
    snn::StreamBuildStats bs;
    auto edges = [](const EdgeStream& emit) {
      stream_grid(12, 17, {1, 4}, 0x60D, emit);
    };
    const CompiledNetwork c =
        nga::compile_sssp_streamed(12 * 17, edges, StoragePolicy::kAuto, &bs);
    c.verify_invariants();
    EXPECT_EQ(bs.num_synapses, 2u * 12 * 17 + 12 * 17);  // edges + guards
    EXPECT_TRUE(c.storage_widths().narrow);
  }
  {
    auto edges = [](const EdgeStream& emit) {
      stream_rmat(8, 1500, 0.57, 0.19, 0.19, {1, 7}, 0x42A7, emit);
    };
    const CompiledNetwork c = nga::compile_sssp_streamed(1u << 8, edges);
    c.verify_invariants();
    EXPECT_EQ(c.num_synapses(), 1500u + (1u << 8));
    EXPECT_TRUE(c.storage_widths().narrow);
  }
}

TEST(StreamCompileTest, StreamedGeneratorsReplayDeterministically) {
  // The two-pass freeze hinges on the stream_* contract: same seed, same
  // edge sequence, every invocation.
  auto collect = [](auto&& gen) {
    std::vector<std::tuple<VertexId, VertexId, Weight>> out;
    gen([&](VertexId u, VertexId v, Weight w) { out.emplace_back(u, v, w); });
    return out;
  };
  auto relay = [](const EdgeStream& e) {
    stream_relay_chain(100, 2, 10, {1, 5}, 7, e);
  };
  auto rmat = [](const EdgeStream& e) {
    stream_rmat(6, 300, 0.5, 0.2, 0.2, {1, 3}, 9, e);
  };
  EXPECT_EQ(collect(relay), collect(relay));
  EXPECT_EQ(collect(rmat), collect(rmat));
}

// ---- Freeze-time validation messages (what failed, and where) -----------

std::string message_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const InvalidArgument& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected InvalidArgument";
  return {};
}

TEST(FreezeValidationTest, MessagesNameTheOffendingNeuronAndValue) {
  {
    // τ out of range: names the neuron ordinal and the bad value.
    Network net;
    net.add_neuron();
    const std::string msg = message_of(
        [&] { net.add_neuron(snn::NeuronParams{0, 1, 1.5}); });
    EXPECT_NE(msg.find("neuron 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1.5"), std::string::npos) << msg;
  }
  {
    // Non-finite threshold caught at freeze time, with the neuron id and
    // both parameter values in the message.
    Network net;
    net.add_neuron();
    net.add_neuron(
        snn::NeuronParams{0, std::numeric_limits<Voltage>::infinity(), 0.0});
    const std::string msg = message_of([&] { net.compile(); });
    EXPECT_NE(msg.find("neuron 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("non-finite"), std::string::npos) << msg;
  }
  {
    // Non-finite weight: names the synapse ordinal and its source neuron.
    Network net;
    net.add_neuron();
    net.add_neuron();
    net.add_synapse(0, 1, 1, 1);
    net.add_synapse(1, 0, std::numeric_limits<SynWeight>::quiet_NaN(), 1);
    const std::string msg = message_of([&] { net.compile(); });
    EXPECT_NE(msg.find("synapse 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("from neuron 1"), std::string::npos) << msg;
  }
}

TEST(FreezeValidationTest, StreamedMessagesNameTheOffendingSynapse) {
  auto params = [](NeuronId) { return snn::NeuronParams{0, 1, 0.0}; };
  {
    // Out-of-range target, with the synapse ordinal and both endpoints.
    const std::string msg = message_of([&] {
      snn::CompiledNetwork::compile_streamed(
          3, params, [](const snn::SynapseSink& sink) {
            sink(0, 1, 1, 1);
            sink(1, 9, 1, 1);
          });
    });
    EXPECT_NE(msg.find("synapse 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("neuron 9"), std::string::npos) << msg;
  }
  {
    // Sub-δ delay names the ordinal, the source, and the bad delay.
    const std::string msg = message_of([&] {
      snn::CompiledNetwork::compile_streamed(
          3, params, [](const snn::SynapseSink& sink) {
            sink(2, 1, 1, 0);
          });
    });
    EXPECT_NE(msg.find("synapse 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("from neuron 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("delay 0"), std::string::npos) << msg;
  }
  {
    // Bad τ from the params callback names the neuron and the value.
    const std::string msg = message_of([&] {
      snn::CompiledNetwork::compile_streamed(
          2, [](NeuronId id) { return snn::NeuronParams{0, 1, id * 2.0}; },
          [](const snn::SynapseSink&) {});
    });
    EXPECT_NE(msg.find("neuron 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("τ = 2"), std::string::npos) << msg;
  }
}

TEST(FreezeValidationTest, NonDeterministicEmitterFailsLoudly) {
  auto params = [](NeuronId) { return snn::NeuronParams{0, 1, 0.0}; };
  {
    // Extra synapse in pass 2.
    int calls = 0;
    const std::string msg = message_of([&] {
      snn::CompiledNetwork::compile_streamed(
          3, params, [&](const snn::SynapseSink& sink) {
            sink(0, 1, 1, 1);
            if (++calls > 1) sink(1, 2, 1, 1);
          });
    });
    EXPECT_NE(msg.find("must be deterministic"), std::string::npos) << msg;
  }
  {
    // Missing synapse in pass 2.
    int calls = 0;
    const std::string msg = message_of([&] {
      snn::CompiledNetwork::compile_streamed(
          3, params, [&](const snn::SynapseSink& sink) {
            if (++calls == 1) sink(0, 1, 1, 1);
          });
    });
    EXPECT_NE(msg.find("must be deterministic"), std::string::npos) << msg;
  }
  {
    // Same count, different source: overflows that row's degree.
    int calls = 0;
    const std::string msg = message_of([&] {
      snn::CompiledNetwork::compile_streamed(
          3, params, [&](const snn::SynapseSink& sink) {
            sink(++calls == 1 ? 0 : 1, 2, 1, 1);
            sink(1, 2, 1, 1);
          });
    });
    EXPECT_NE(msg.find("must be deterministic"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace sga
