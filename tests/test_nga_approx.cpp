// Tests for the Section-7 approximation algorithm: the Theorem 7.1/7.2
// guarantees (dist ≤ d̃_k ≤ (1+ε)·dist_k), the neuron-count advantage over
// the exact polynomial algorithm, and the cost formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "core/random.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/approx.h"
#include "nga/costs.h"

namespace sga::nga {
namespace {

void expect_guarantee(const Graph& g, std::uint32_t k, std::uint64_t seed) {
  const auto exact_k = bellman_ford_khop(g, 0, k);
  const auto exact = dijkstra(g, 0);
  ApproxKHopOptions opt;
  opt.source = 0;
  opt.k = k;
  const auto got = approx_khop_sssp(g, opt);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (exact_k.reachable(v)) {
      ASSERT_TRUE(got.reachable(v)) << "seed " << seed << " v " << v;
      // Upper bound (Theorem 7.1): d̃ ≤ (1+ε)·dist_k. Allow the tiniest
      // float slack on the comparison itself.
      EXPECT_LE(got.dist[v], (1.0 + got.epsilon) *
                                     static_cast<double>(exact_k.dist[v]) +
                                 1e-9)
          << "seed " << seed << " v " << v;
    }
    if (got.reachable(v)) {
      // Lower bound: every estimate is the rounded-up length of a real
      // walk, so it is at least the true (unbounded-hop) distance.
      ASSERT_TRUE(exact.reachable(v)) << "seed " << seed << " v " << v;
      EXPECT_GE(got.dist[v], static_cast<double>(exact.dist[v]) - 1e-9)
          << "seed " << seed << " v " << v;
    }
  }
}

class ApproxSweep : public ::testing::TestWithParam<int> {};

TEST_P(ApproxSweep, GuaranteeHoldsOnRandomGraphs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0xA990 + seed);
  const Graph g = make_random_graph(24, 90, {1, 20}, rng);
  expect_guarantee(g, 2 + static_cast<std::uint32_t>(seed % 5), seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxSweep, ::testing::Range(0, 8));

TEST(Approx, GuaranteeOnGridAndPath) {
  Rng rng(0xA1);
  expect_guarantee(make_grid_graph(5, 5, {1, 30}, rng), 6, 0);
  expect_guarantee(make_path_graph(12, {1, 50}, rng), 11, 1);
}

TEST(Approx, UsesFewerNeuronsThanExactOnSparseGraphs) {
  // Theorem 7.2's point: n·log(kU·log n) vs m·log(nU) neurons.
  Rng rng(0xA2);
  const Graph g = make_random_graph(64, 512, {1, 8}, rng);
  ApproxKHopOptions opt;
  opt.source = 0;
  opt.k = 8;
  const auto got = approx_khop_sssp(g, opt);
  EXPECT_LT(got.neurons_total, got.neurons_exact);
}

TEST(Approx, EpsilonDefaultsToInverseLogN) {
  Rng rng(0xA3);
  const Graph g = make_random_graph(32, 64, {1, 4}, rng);
  ApproxKHopOptions opt;
  opt.source = 0;
  opt.k = 3;
  const auto got = approx_khop_sssp(g, opt);
  EXPECT_NEAR(got.epsilon, 1.0 / std::log2(32.0), 1e-12);
  EXPECT_EQ(got.num_scales,
            1 + static_cast<std::uint32_t>(std::ceil(
                    std::log2(2.0 * 3 * 4 / got.epsilon))));
}

TEST(Approx, TighterEpsilonImprovesEstimate) {
  Rng rng(0xA4);
  const Graph g = make_random_graph(24, 96, {1, 40}, rng);
  ApproxKHopOptions loose;
  loose.source = 0;
  loose.k = 5;
  loose.epsilon = 0.5;
  ApproxKHopOptions tight = loose;
  tight.epsilon = 0.05;
  const auto a = approx_khop_sssp(g, loose);
  const auto b = approx_khop_sssp(g, tight);
  const auto exact_k = bellman_ford_khop(g, 0, 5);
  double worst_a = 0, worst_b = 0;
  for (VertexId v = 1; v < 24; ++v) {
    if (!exact_k.reachable(v)) continue;
    const double d = static_cast<double>(exact_k.dist[v]);
    worst_a = std::max(worst_a, a.dist[v] / d);
    worst_b = std::max(worst_b, b.dist[v] / d);
  }
  EXPECT_LE(worst_b, worst_a + 1e-9);
  EXPECT_LE(worst_b, 1.05 + 1e-9);
}

TEST(CostFormulas, Table1Relationships) {
  ProblemParams p;
  p.n = 1024;
  p.m = 8192;
  p.k = 64;
  p.U = 16;
  p.L = 100;
  p.alpha = 10;
  p.c = 4;

  // k-hop, ignoring data movement: neuromorphic wins iff log(nU) = o(k).
  EXPECT_LT(nm_khop_poly_spiking_only(p), conv_khop(p));
  // The DISTANCE lower bound dominates the conventional op count.
  EXPECT_GT(lb_khop_bellman_ford(p), conv_khop(p));
  // Lower bounds compose: k-hop bound = k × input-read bound.
  EXPECT_DOUBLE_EQ(lb_khop_bellman_ford(p),
                   static_cast<double>(p.k) * lb_input_read(p));
  // Embedded (crossbar) costs exceed the O(1)-movement costs.
  EXPECT_GT(nm_sssp_pseudo_embedded(p), nm_sssp_pseudo(p));
  EXPECT_GT(nm_khop_poly_embedded(p), nm_khop_poly_spiking_only(p));
  EXPECT_GE(log2_clamped(1.5), 1.0);
}

}  // namespace
}  // namespace sga::nga
