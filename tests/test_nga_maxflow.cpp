// Tests for the neuromorphic-assisted max flow (the Section-8 future-work
// direction): agreement with the conventional Edmonds–Karp reference,
// flow-conservation and capacity invariants, both path-capture backends,
// and classic hand-checkable instances.
#include <gtest/gtest.h>

#include "core/random.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "nga/maxflow.h"

namespace sga::nga {
namespace {

void check_flow_invariants(const Graph& g, const MaxFlowResult& r,
                           VertexId source, VertexId sink) {
  // Capacity constraints.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(r.flow[e], 0) << "edge " << e;
    EXPECT_LE(r.flow[e], g.edge(e).length) << "edge " << e;
  }
  // Conservation: net outflow is +value at source, -value at sink, 0 else.
  std::vector<std::int64_t> net(g.num_vertices(), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    net[g.edge(e).from] += r.flow[e];
    net[g.edge(e).to] -= r.flow[e];
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == source) {
      EXPECT_EQ(net[v], r.value);
    } else if (v == sink) {
      EXPECT_EQ(net[v], -r.value);
    } else {
      EXPECT_EQ(net[v], 0) << "vertex " << v;
    }
  }
}

TEST(SpikingMaxFlow, TextbookInstance) {
  // The classic CLRS-style example with known max flow.
  Graph g(6);
  g.add_edge(0, 1, 16);
  g.add_edge(0, 2, 13);
  g.add_edge(1, 2, 10);
  g.add_edge(2, 1, 4);
  g.add_edge(1, 3, 12);
  g.add_edge(3, 2, 9);
  g.add_edge(2, 4, 14);
  g.add_edge(4, 3, 7);
  g.add_edge(3, 5, 20);
  g.add_edge(4, 5, 4);
  MaxFlowOptions opt;
  opt.source = 0;
  opt.sink = 5;
  const auto r = spiking_max_flow(g, opt);
  EXPECT_EQ(r.value, 23);
  EXPECT_EQ(reference_max_flow(g, 0, 5), 23);
  check_flow_invariants(g, r, 0, 5);
  EXPECT_GT(r.total_spikes, 0u);
}

TEST(SpikingMaxFlow, DisconnectedSinkHasZeroFlow) {
  Graph g(4);
  g.add_edge(0, 1, 5);
  g.add_edge(2, 3, 5);
  MaxFlowOptions opt;
  opt.source = 0;
  opt.sink = 3;
  const auto r = spiking_max_flow(g, opt);
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(r.phases, 0u);
}

TEST(SpikingMaxFlow, SingleEdgeAndParallelEdges) {
  Graph g(2);
  g.add_edge(0, 1, 7);
  g.add_edge(0, 1, 5);
  MaxFlowOptions opt;
  opt.source = 0;
  opt.sink = 1;
  const auto r = spiking_max_flow(g, opt);
  EXPECT_EQ(r.value, 12);
  check_flow_invariants(g, r, 0, 1);
}

TEST(SpikingMaxFlow, BackEdgeCancellationIsNeeded) {
  // Flow must reroute through the cancellation of an earlier push: the
  // standard "cross" instance.
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(2, 3, 1);
  MaxFlowOptions opt;
  opt.source = 0;
  opt.sink = 3;
  const auto r = spiking_max_flow(g, opt);
  EXPECT_EQ(r.value, 2);
  check_flow_invariants(g, r, 0, 3);
}

TEST(SpikingMaxFlow, RejectsEqualEndpoints) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  MaxFlowOptions opt;
  opt.source = 0;
  opt.sink = 0;
  EXPECT_THROW(spiking_max_flow(g, opt), InvalidArgument);
}

class MaxFlowFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowFuzz, MatchesReferenceOnRandomGraphs) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0xF10 + seed);
  const Graph g = make_random_graph(14, 50, {1, 9}, rng,
                                    /*ensure_connected=*/seed % 2 == 0);
  const VertexId sink = 13;
  MaxFlowOptions opt;
  opt.source = 0;
  opt.sink = sink;
  opt.gate_level_paths = (seed % 3 == 0);
  const auto r = spiking_max_flow(g, opt);
  EXPECT_EQ(r.value, reference_max_flow(g, 0, sink)) << "seed " << seed;
  check_flow_invariants(g, r, 0, sink);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowFuzz, ::testing::Range(0, 12));

TEST(SpikingMaxFlow, GateLevelAndProbePathsAgreeOnValue) {
  Rng rng(0xF20);
  const Graph g = make_random_graph(12, 40, {1, 6}, rng);
  MaxFlowOptions probe;
  probe.source = 0;
  probe.sink = 11;
  MaxFlowOptions gate = probe;
  gate.gate_level_paths = true;
  const auto a = spiking_max_flow(g, probe);
  const auto b = spiking_max_flow(g, gate);
  EXPECT_EQ(a.value, b.value);
  // The gate-level searches run the whole graph each phase (no early
  // terminal), so they cost at least as many spikes.
  EXPECT_GE(b.total_spikes, a.total_spikes);
}

}  // namespace
}  // namespace sga::nga
