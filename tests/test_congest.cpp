// Tests for the CONGEST layer (Section 2.2): bandwidth enforcement, the
// NGA→CONGEST simulation (identical traces, one round per round), the
// SNN→CONGEST simulation (spike-for-spike equality with the event-driven
// simulator, 1-bit messages), and the CONGEST-native Bellman–Ford.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "congest/congest.h"
#include "core/bitops.h"
#include "core/random.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/approx.h"
#include "nga/matvec.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::congest {
namespace {

TEST(CongestSim, EnforcesBandwidth) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  CongestSim sim(g, 4);
  const auto send_big = [](VertexId, std::uint64_t, std::size_t) -> Payload {
    return 16;  // needs 5 bits
  };
  const auto receive = [](VertexId, std::uint64_t, const std::vector<Payload>&) {};
  EXPECT_THROW(sim.run(1, send_big, receive), InvalidArgument);
  const auto send_ok = [](VertexId, std::uint64_t, std::size_t) -> Payload {
    return 15;
  };
  const auto st = sim.run(1, send_ok, receive);
  EXPECT_EQ(st.messages, 1u);
  EXPECT_EQ(st.max_bits_used, 4u);
}

TEST(CongestSim, SilentEdgesCarryNothing) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  CongestSim sim(g, 8);
  std::vector<Payload> seen_at_2;
  const auto send = [](VertexId v, std::uint64_t, std::size_t) -> Payload {
    if (v == 0) return 7;
    return std::nullopt;
  };
  const auto receive = [&](VertexId v, std::uint64_t,
                           const std::vector<Payload>& in) {
    if (v == 2) seen_at_2 = in;
  };
  const auto st = sim.run(1, send, receive);
  EXPECT_EQ(st.messages, 1u);
  ASSERT_EQ(seen_at_2.size(), 1u);
  EXPECT_FALSE(seen_at_2[0].has_value());
}

TEST(NgaInCongest, MinPlusTraceMatchesDirectExecution) {
  Rng rng(0xC0);
  const Graph g = make_random_graph(12, 40, {1, 6}, rng);
  std::vector<nga::Message> init(12);
  init[0] = nga::Message{0, true};
  const auto edge = [](const Edge& e, const nga::Message& m) {
    return nga::Message{m.value + static_cast<std::uint64_t>(e.length), true};
  };
  const auto node = [](VertexId, const std::vector<nga::Message>& in) {
    nga::Message best;
    for (const auto& m : in) {
      if (m.valid && (!best.valid || m.value < best.value)) best = m;
    }
    return best;
  };
  const auto direct = nga::run_nga(g, init, 5, edge, node);
  RoundStats st;
  const auto via_congest = run_nga_in_congest(g, init, 5, 16, edge, node, &st);
  ASSERT_EQ(via_congest.per_round.size(), direct.per_round.size());
  for (std::size_t r = 0; r < direct.per_round.size(); ++r) {
    EXPECT_EQ(via_congest.per_round[r], direct.per_round[r]) << "round " << r;
  }
  EXPECT_EQ(st.rounds, 5u);  // constant-factor (here: 1:1) round overhead
}

class SnnCongestSweep : public ::testing::TestWithParam<int> {};

TEST_P(SnnCongestSweep, MatchesEventDrivenSimulatorSpikeForSpike) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(0xC17 + seed);
  // Random mixed network, as in the simulator property tests.
  snn::Network net;
  const std::size_t n = 18;
  for (std::size_t i = 0; i < n; ++i) {
    snn::NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    p.tau = (seed % 2 == 0) ? 0.0 : 1.0;
    net.add_neuron(p);
  }
  for (int s = 0; s < 70; ++s) {
    net.add_synapse(
        static_cast<NeuronId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
        static_cast<NeuronId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)),
        static_cast<SynWeight>(rng.uniform_int(-1, 2)), rng.uniform_int(1, 6));
  }
  const Time horizon = 40;
  std::vector<std::pair<NeuronId, Time>> injections{{0, 0}, {1, 2}, {2, 0}};

  // Event-driven reference.
  snn::Simulator sim(net);
  for (const auto& [id, t] : injections) sim.inject_spike(id, t);
  snn::SimConfig cfg;
  cfg.max_time = horizon;
  cfg.record_spike_log = true;
  sim.run(cfg);
  auto expected = sim.spike_log();
  std::sort(expected.begin(), expected.end());

  // CONGEST simulation.
  auto got = simulate_snn_in_congest(net.compile(), injections, horizon).spike_log;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnnCongestSweep, ::testing::Range(0, 10));

TEST(SnnCongest, UsesOneBitMessages) {
  snn::Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 4);
  const auto r = simulate_snn_in_congest(net.compile(), {{a, 0}}, 10);
  EXPECT_EQ(r.stats.max_bits_used, 1u);
  ASSERT_EQ(r.spike_log.size(), 2u);
  EXPECT_EQ(r.spike_log[0], (std::pair<Time, NeuronId>{0, a}));
  EXPECT_EQ(r.spike_log[1], (std::pair<Time, NeuronId>{4, b}));
}

TEST(CongestBellmanFord, MatchesReferenceAndUsesLogWidthMessages) {
  Rng rng(0xC2);
  const Graph g = make_random_graph(20, 70, {1, 9}, rng);
  for (const std::uint32_t k : {1u, 3u, 7u}) {
    const auto ref = bellman_ford_khop(g, 0, k);
    const auto got = congest_bellman_ford(g, 0, k);
    EXPECT_EQ(got.dist, ref.dist) << "k=" << k;
    EXPECT_EQ(got.stats.rounds, k);
    // Message width: O(log kU) bits.
    EXPECT_LE(got.stats.max_bits_used,
              static_cast<std::uint64_t>(bits_for(
                  static_cast<std::uint64_t>(k) *
                      static_cast<std::uint64_t>(g.max_edge_length()) +
                  1)));
  }
}

TEST(DelayedCongest, SsspWithOneBitMessagesMatchesDijkstra) {
  // The Section-2.2 "CONGEST-like model with programmable delays": the
  // Section-3 algorithm becomes a 1-bit distributed algorithm whose round
  // complexity is the distance L.
  Rng rng(0xC30);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = make_random_graph(18, 60, {1, 8}, rng);
    const auto ref = dijkstra(g, 0);
    Weight ecc = 0;
    for (VertexId v = 0; v < 18; ++v) {
      if (ref.reachable(v)) ecc = std::max(ecc, ref.dist[v]);
    }
    const auto got = delayed_congest_sssp(g, 0, ecc + 2);
    EXPECT_EQ(got.dist, ref.dist) << "seed " << seed;
    EXPECT_EQ(got.stats.max_bits_used, 1u);
    // Message complexity: each node broadcasts once ⇒ ≤ m messages.
    EXPECT_LE(got.stats.messages, g.num_edges());
  }
}

TEST(DelayedCongest, EdgeDelayCostsExactlyItsLength) {
  Graph g(3);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 3);
  const auto got = delayed_congest_sssp(g, 0, 12);
  EXPECT_EQ(got.dist[1], 5);
  EXPECT_EQ(got.dist[2], 8);
}

TEST(CongestApprox, MatchesSpikingApproximation) {
  // The Section-7 algorithm run in its native CONGEST habitat must produce
  // the same estimates as the spiking version (identical scales, rounding,
  // deadline).
  Rng rng(0xC40);
  const Graph g = make_random_graph(20, 70, {1, 18}, rng);
  nga::ApproxKHopOptions sopt;
  sopt.source = 0;
  sopt.k = 5;
  const auto spiking = nga::approx_khop_sssp(g, sopt);
  const auto congested = congest_approx_khop(g, 0, 5);
  EXPECT_EQ(congested.num_scales, spiking.num_scales);
  EXPECT_DOUBLE_EQ(congested.epsilon, spiking.epsilon);
  for (VertexId v = 0; v < 20; ++v) {
    if (spiking.reachable(v)) {
      EXPECT_NEAR(congested.dist[v], spiking.dist[v], 1e-9) << "v " << v;
    } else {
      EXPECT_TRUE(std::isinf(congested.dist[v])) << "v " << v;
    }
  }
  EXPECT_GT(congested.total_messages, 0u);
}

TEST(DelayedCongest, HorizonTruncates) {
  Graph g(3);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 4);
  const auto got = delayed_congest_sssp(g, 0, 5);
  EXPECT_EQ(got.dist[1], 4);
  EXPECT_EQ(got.dist[2], kInfiniteDistance);  // would need round 9
}

}  // namespace
}  // namespace sga::congest
