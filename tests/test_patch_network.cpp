// Incremental recompile tests: CompiledNetwork::patch_weights /
// patch_delays (docs/PERSISTENCE.md).
//
// The oracle is a FRESH FREEZE of the edited builder network. patch_weights
// never reorders, so the patched payload must equal the fresh freeze array
// for array; patch_delays re-sorts touched rows from an already-sorted
// starting permutation, so equal-delay tie order may legitimately differ
// from a fresh freeze — those tests compare what the contract actually
// promises: simulation behavior (integer weights keep it FP-exact), the
// positive-in-weight table, max_delay, and verbatim segments on untouched
// rows.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <tuple>
#include <utility>
#include <vector>

#include "core/random.h"
#include "snn/compiled_network.h"
#include "snn/network.h"
#include "snn/simulator.h"

namespace sga::snn {
namespace {

Network random_net(std::uint64_t seed, std::size_t n, std::size_t m,
                   Delay max_delay) {
  Rng rng(seed);
  Network net;
  for (std::size_t i = 0; i < n; ++i) {
    NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    net.add_neuron(p);
  }
  const auto last = static_cast<std::int64_t>(n) - 1;
  for (std::size_t e = 0; e < m; ++e) {
    net.add_synapse(static_cast<NeuronId>(rng.uniform_int(0, last)),
                    static_cast<NeuronId>(rng.uniform_int(0, last)),
                    static_cast<SynWeight>(rng.uniform_int(1, 3)),
                    rng.uniform_int(1, max_delay));
  }
  return net;
}

/// Full payload equality (targets, weights, delays, segments, aggregates).
void expect_payload_eq(const CompiledNetwork& a, const CompiledNetwork& b) {
  ASSERT_EQ(a.num_neurons(), b.num_neurons());
  ASSERT_EQ(a.num_synapses(), b.num_synapses());
  EXPECT_EQ(a.max_delay(), b.max_delay());
  EXPECT_EQ(a.num_delay_segments(), b.num_delay_segments());
  for (std::size_t k = 0; k < a.num_synapses(); ++k) {
    EXPECT_EQ(a.syn_target(k), b.syn_target(k)) << "synapse " << k;
    EXPECT_EQ(a.syn_weight(k), b.syn_weight(k)) << "synapse " << k;
    EXPECT_EQ(a.syn_delay(k), b.syn_delay(k)) << "synapse " << k;
  }
  for (NeuronId i = 0; i < a.num_neurons(); ++i) {
    EXPECT_EQ(a.out_begin(i), b.out_begin(i));
    EXPECT_EQ(a.positive_in_weight(i), b.positive_in_weight(i))
        << "neuron " << i;
  }
  for (std::size_t s = 0; s < a.num_delay_segments(); ++s) {
    EXPECT_EQ(a.seg_delay(s), b.seg_delay(s)) << "segment " << s;
    EXPECT_EQ(a.seg_syn_begin(s), b.seg_syn_begin(s)) << "segment " << s;
    EXPECT_EQ(a.seg_syn_end(s), b.seg_syn_end(s)) << "segment " << s;
  }
}

/// Behavioral equality: same run on the same injections, full state compare.
void expect_sim_eq(const CompiledNetwork& a, const CompiledNetwork& b,
                   std::uint64_t seed) {
  Rng rng(seed);
  SimConfig cfg;
  cfg.record_spike_log = true;
  cfg.max_time = 400;
  Simulator sa(a);
  Simulator sb(b);
  const auto last = static_cast<std::int64_t>(a.num_neurons()) - 1;
  for (int i = 0; i < 4; ++i) {
    const auto id = static_cast<NeuronId>(rng.uniform_int(0, last));
    const Time t = rng.uniform_int(0, 3);
    sa.inject_spike(id, t);
    sb.inject_spike(id, t);
  }
  const SimStats ra = sa.run(cfg);
  const SimStats rb = sb.run(cfg);
  EXPECT_EQ(ra.spikes, rb.spikes);
  EXPECT_EQ(ra.deliveries, rb.deliveries);
  EXPECT_EQ(ra.end_time, rb.end_time);
  EXPECT_EQ(sa.spike_log(), sb.spike_log());
  for (NeuronId i = 0; i < a.num_neurons(); ++i) {
    EXPECT_EQ(sa.potential(i), sb.potential(i)) << "neuron " << i;
  }
}

// ---- patch_weights -------------------------------------------------------

TEST(PatchWeights, MatchesAFreshFreezeExactly) {
  for (const StoragePolicy policy :
       {StoragePolicy::kAuto, StoragePolicy::kWide}) {
    Network orig = random_net(0x11, 30, 160, 6);
    CompiledNetwork patched(orig, policy);

    // Edit ~1/4 of the synapses, including sign flips (the positive
    // in-weight table must track membership changes, not just magnitudes).
    Rng rng(0x12);
    std::vector<std::pair<std::size_t, SynWeight>> edits;
    for (std::size_t k = 0; k < patched.num_synapses(); k += 4) {
      SynWeight w = static_cast<SynWeight>(rng.uniform_int(1, 3));
      if (rng.bernoulli(0.3)) w = -w;
      edits.emplace_back(k, w);
    }
    patched.patch_weights(edits);
    patched.verify_invariants();

    // Fresh-freeze oracle: rebuild the edited graph row-major from the
    // patched artifact and freeze it from scratch. patch_weights never
    // reorders, and each row is already delay-sorted, so the fresh freeze's
    // stable sort reproduces the identical flat layout — full payload
    // equality is the honest comparison here.
    Network edited;
    for (NeuronId i = 0; i < patched.num_neurons(); ++i) {
      edited.add_neuron(patched.params(i));
    }
    for (NeuronId i = 0; i < patched.num_neurons(); ++i) {
      for (std::size_t k = patched.out_begin(i); k < patched.out_end(i);
           ++k) {
        edited.add_synapse(i, patched.syn_target(k), patched.syn_weight(k),
                           patched.syn_delay(k));
      }
    }
    const CompiledNetwork oracle(edited, policy);
    expect_payload_eq(patched, oracle);
    expect_sim_eq(patched, oracle, 0x13);

    // Independent pos_in_weight check against a direct tabulation.
    std::vector<SynWeight> expect_pw(patched.num_neurons(), 0);
    for (std::size_t k = 0; k < patched.num_synapses(); ++k) {
      const SynWeight w = patched.syn_weight(k);
      if (w > 0) expect_pw[patched.syn_target(k)] += w;
    }
    for (NeuronId i = 0; i < patched.num_neurons(); ++i) {
      EXPECT_EQ(patched.positive_in_weight(i), expect_pw[i]) << "neuron " << i;
    }
  }
}

TEST(PatchWeights, LaterDuplicateWins) {
  Network net = random_net(0x21, 10, 40, 3);
  CompiledNetwork cn(net);
  cn.patch_weights({{5, 2.0}, {5, -1.0}});
  EXPECT_EQ(cn.syn_weight(5), -1.0);
}

TEST(PatchWeights, RejectsBadEditsUntouched) {
  Network net = random_net(0x22, 10, 40, 3);
  CompiledNetwork cn(net, StoragePolicy::kAuto);
  ASSERT_TRUE(cn.storage_widths().narrow);
  const SynWeight before = cn.syn_weight(3);

  // Out-of-range index: nothing applied, not even the valid first edit.
  EXPECT_THROW(cn.patch_weights({{3, 2.0}, {cn.num_synapses(), 1.0}}), Error);
  EXPECT_EQ(cn.syn_weight(3), before);

  // Non-finite weight.
  EXPECT_THROW(cn.patch_weights({{3, std::nan("")}}), Error);
  EXPECT_EQ(cn.syn_weight(3), before);

  if (cn.storage_widths().weight_bytes == 4) {
    // 0.3 does not round-trip float32: the narrow store must refuse it
    // rather than silently store a perturbed weight.
    EXPECT_THROW(cn.patch_weights({{3, 0.3}}), Error);
    EXPECT_EQ(cn.syn_weight(3), before);
  }

  // The wide store takes anything finite.
  CompiledNetwork wide(net, StoragePolicy::kWide);
  wide.patch_weights({{3, 0.3}});
  EXPECT_EQ(wide.syn_weight(3), 0.3);
  wide.verify_invariants();
}

// ---- patch_delays --------------------------------------------------------

TEST(PatchDelays, BehavesLikeAFreshFreeze) {
  for (const StoragePolicy policy :
       {StoragePolicy::kAuto, StoragePolicy::kWide}) {
    Network orig = random_net(0x31, 30, 160, 6);
    const CompiledNetwork frozen(orig, policy);

    Rng rng(0x32);
    std::vector<std::pair<std::size_t, Delay>> edits;
    for (std::size_t k = 0; k < frozen.num_synapses(); k += 5) {
      edits.emplace_back(k, rng.uniform_int(1, 6));
    }

    CompiledNetwork patched = frozen;
    patched.patch_delays(edits);
    patched.verify_invariants();

    // Fresh-freeze oracle: rebuild the edited graph in the PATCHED row
    // order (row-major over the patched artifact) so tie order matches.
    Network edited;
    for (NeuronId i = 0; i < frozen.num_neurons(); ++i) {
      edited.add_neuron(frozen.params(i));
    }
    for (NeuronId i = 0; i < patched.num_neurons(); ++i) {
      for (std::size_t k = patched.out_begin(i); k < patched.out_end(i);
           ++k) {
        edited.add_synapse(i, patched.syn_target(k), patched.syn_weight(k),
                           patched.syn_delay(k));
      }
    }
    const CompiledNetwork oracle(edited, policy);
    expect_payload_eq(patched, oracle);
    expect_sim_eq(patched, oracle, 0x33);
  }
}

TEST(PatchDelays, UntouchedRowsKeepTheirSegmentsVerbatim) {
  Network net = random_net(0x41, 24, 140, 6);
  CompiledNetwork cn(net);
  // Edit only row 0's synapses.
  ASSERT_GT(cn.out_degree(0), 0u);
  std::vector<std::pair<std::size_t, Delay>> edits;
  for (std::size_t k = cn.out_begin(0); k < cn.out_end(0); ++k) {
    edits.emplace_back(k, 6 - cn.syn_delay(k) + 1);
  }
  // Record every other row's segment triples first.
  std::vector<std::tuple<Delay, std::size_t, std::size_t>> before;
  for (NeuronId i = 1; i < cn.num_neurons(); ++i) {
    for (std::size_t s = cn.seg_begin(i); s < cn.seg_end(i); ++s) {
      before.emplace_back(cn.seg_delay(s), cn.seg_syn_begin(s),
                          cn.seg_syn_end(s));
    }
  }
  cn.patch_delays(edits);
  std::vector<std::tuple<Delay, std::size_t, std::size_t>> after;
  for (NeuronId i = 1; i < cn.num_neurons(); ++i) {
    for (std::size_t s = cn.seg_begin(i); s < cn.seg_end(i); ++s) {
      after.emplace_back(cn.seg_delay(s), cn.seg_syn_begin(s),
                         cn.seg_syn_end(s));
    }
  }
  EXPECT_EQ(before, after);
  cn.verify_invariants();
}

TEST(PatchDelays, MaxDelayGrowsAndShrinks) {
  Network net;
  for (int i = 0; i < 4; ++i) net.add_neuron();
  net.add_synapse(0, 1, 1.0, 2);
  net.add_synapse(0, 2, 1.0, 5);
  net.add_synapse(1, 3, 1.0, 3);
  CompiledNetwork cn(net, StoragePolicy::kWide);
  ASSERT_EQ(cn.max_delay(), 5);

  cn.patch_delays({{1, 90}});  // the delay-5 synapse grows
  EXPECT_EQ(cn.max_delay(), 90);
  cn.verify_invariants();

  cn.patch_delays({{1, 4}});  // shrinks, but still above the delay-3 edge
  EXPECT_EQ(cn.max_delay(), 4);

  cn.patch_delays({{1, 1}});  // now delay 3 is the global max again
  EXPECT_EQ(cn.max_delay(), 3);
  cn.verify_invariants();

  // A simulator built AFTER the patches sees the new horizon and still
  // computes the right result.
  Simulator sim(cn);
  sim.inject_spike(0, 0);
  SimConfig cfg;
  cfg.record_spike_log = true;
  const SimStats st = sim.run(cfg);
  EXPECT_EQ(sim.first_spike(2), 1);  // patched delay 1
  EXPECT_EQ(sim.first_spike(1), 2);
  EXPECT_EQ(sim.first_spike(3), 5);  // 2 + 3
  EXPECT_EQ(st.end_time, 5);
}

TEST(PatchDelays, SegmentCountChanges) {
  Network net;
  for (int i = 0; i < 3; ++i) net.add_neuron();
  net.add_synapse(0, 1, 1.0, 2);
  net.add_synapse(0, 2, 1.0, 2);
  net.add_synapse(0, 1, 1.0, 4);
  CompiledNetwork cn(net, StoragePolicy::kWide);
  ASSERT_EQ(cn.num_delay_segments(), 2u);  // {2,2} and {4}

  cn.patch_delays({{0, 1}, {1, 3}});  // delays now 1, 3, 4 — three runs
  EXPECT_EQ(cn.num_delay_segments(), 3u);
  cn.verify_invariants();

  cn.patch_delays({{0, 4}, {1, 4}});  // all collapse into one run of 4
  EXPECT_EQ(cn.num_delay_segments(), 1u);
  EXPECT_EQ(cn.max_delay(), 4);
  cn.verify_invariants();
}

TEST(PatchDelays, RejectsBadEditsUntouched) {
  Network net = random_net(0x51, 10, 40, 3);
  CompiledNetwork narrow(net, StoragePolicy::kAuto);
  ASSERT_TRUE(narrow.storage_widths().narrow);
  ASSERT_EQ(narrow.storage_widths().delay_bytes, 1u);  // max observed ≤ 255
  const Delay before = narrow.syn_delay(3);

  EXPECT_THROW(narrow.patch_delays({{3, 0}}), Error);  // below δ
  EXPECT_EQ(narrow.syn_delay(3), before);
  EXPECT_THROW(narrow.patch_delays({{narrow.num_synapses(), 2}}), Error);
  EXPECT_THROW(narrow.patch_delays({{3, 300}}), Error);  // u8 overflow
  EXPECT_EQ(narrow.syn_delay(3), before);
  narrow.verify_invariants();

  CompiledNetwork wide(net, StoragePolicy::kWide);
  // Locate index 3's row first: the patch re-sorts that row by delay, so
  // the edited synapse lands at the row's END, not necessarily at index 3.
  NeuronId row = 0;
  while (wide.out_end(row) <= 3) ++row;
  wide.patch_delays({{3, 300}});
  EXPECT_EQ(wide.syn_delay(wide.out_end(row) - 1), 300);
  EXPECT_EQ(wide.max_delay(), 300);
  wide.verify_invariants();
}

}  // namespace
}  // namespace sga::snn
