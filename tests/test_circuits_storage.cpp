// Tests for the Section-4.3 storage circuits: strobed capture into latch
// banks and the clock-driven per-round store.
#include <gtest/gtest.h>

#include "circuits/storage.h"
#include "core/random.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::circuits {
namespace {

TEST(StrobedStore, CapturesValueAtStrobeTime) {
  snn::Network net;
  const StrobedStore s = build_strobed_store(net, 6);
  snn::Simulator sim(net);
  snn::inject_binary(sim, s.bus, 0b010110, 4);
  sim.inject_spike(s.strobe, 4);
  snn::SimConfig cfg;
  cfg.max_time = 50;
  sim.run(cfg);
  EXPECT_EQ(read_latched(sim, s.latches), 0b010110u);
  // Latch holds: all set latches keep firing through the horizon.
  for (std::size_t b = 0; b < 6; ++b) {
    if ((0b010110u >> b) & 1u) {
      EXPECT_EQ(sim.last_spike(s.latches[b]), 50);
    } else {
      EXPECT_EQ(sim.first_spike(s.latches[b]), kNever);
    }
  }
}

TEST(StrobedStore, IgnoresBusWithoutStrobe) {
  snn::Network net;
  const StrobedStore s = build_strobed_store(net, 4);
  snn::Simulator sim(net);
  snn::inject_binary(sim, s.bus, 0b1111, 2);  // no strobe
  snn::SimConfig cfg;
  cfg.max_time = 20;
  sim.run(cfg);
  EXPECT_EQ(read_latched(sim, s.latches), 0u);
}

TEST(StrobedStore, MisalignedStrobeCapturesNothing) {
  snn::Network net;
  const StrobedStore s = build_strobed_store(net, 4);
  snn::Simulator sim(net);
  snn::inject_binary(sim, s.bus, 0b1010, 3);
  sim.inject_spike(s.strobe, 5);  // two steps late: τ=1 gates see nothing
  snn::SimConfig cfg;
  cfg.max_time = 20;
  sim.run(cfg);
  EXPECT_EQ(read_latched(sim, s.latches), 0u);
}

TEST(StrobedStore, LaterValuesDoNotOverwrite) {
  snn::Network net;
  const StrobedStore s = build_strobed_store(net, 4);
  snn::Simulator sim(net);
  snn::inject_binary(sim, s.bus, 0b0001, 2);
  sim.inject_spike(s.strobe, 2);
  snn::inject_binary(sim, s.bus, 0b1000, 9);  // no strobe: must not latch
  snn::SimConfig cfg;
  cfg.max_time = 30;
  sim.run(cfg);
  EXPECT_EQ(read_latched(sim, s.latches), 0b0001u);
}

TEST(RoundStore, BanksCaptureTheirRounds) {
  // Bus presents a different value at each round boundary; bank r must hold
  // round r's value — the Section 4.3 "O(k) extra neurons" memory.
  snn::Network net;
  const RoundStore s = build_round_store(net, 5, /*period=*/7, /*rounds=*/4);
  snn::Simulator sim(net);
  const std::uint64_t values[4] = {3, 17, 0, 30};
  sim.inject_spike(s.clock_start, 10);
  for (int r = 0; r < 4; ++r) {
    snn::inject_binary(sim, s.bus, values[r], 10 + 7 * r);
  }
  snn::SimConfig cfg;
  cfg.max_time = 60;
  sim.run(cfg);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(read_latched(sim, s.latches[static_cast<std::size_t>(r)]),
              values[r])
        << "round " << r;
  }
}

TEST(RoundStore, OffBoundaryBusActivityIsIgnored) {
  snn::Network net;
  const RoundStore s = build_round_store(net, 4, 5, 3);
  snn::Simulator sim(net);
  sim.inject_spike(s.clock_start, 0);
  snn::inject_binary(sim, s.bus, 0b1111, 2);  // between ticks
  snn::inject_binary(sim, s.bus, 0b0101, 5);  // tick 1
  snn::SimConfig cfg;
  cfg.max_time = 30;
  sim.run(cfg);
  EXPECT_EQ(read_latched(sim, s.latches[0]), 0u);
  EXPECT_EQ(read_latched(sim, s.latches[1]), 0b0101u);
  EXPECT_EQ(read_latched(sim, s.latches[2]), 0u);
}

TEST(RoundStore, NeuronCountIsRoundsTimesWidth) {
  snn::Network net;
  const RoundStore s = build_round_store(net, 8, 3, 6);
  // bus(8) + clock(6) + per round: capture(8) + latch(8).
  EXPECT_EQ(s.neurons, 8u + 6u + 6u * 16u);
}

TEST(RoundStore, RandomizedSweep) {
  Rng rng(0x570);
  for (int trial = 0; trial < 5; ++trial) {
    const int bits = static_cast<int>(rng.uniform_int(1, 8));
    const int rounds = static_cast<int>(rng.uniform_int(1, 5));
    const Delay period = rng.uniform_int(3, 9);
    snn::Network net;
    const RoundStore s = build_round_store(net, bits, period, rounds);
    snn::Simulator sim(net);
    sim.inject_spike(s.clock_start, 1);
    std::vector<std::uint64_t> values;
    for (int r = 0; r < rounds; ++r) {
      values.push_back(static_cast<std::uint64_t>(
          rng.uniform_int(0, (1 << bits) - 1)));
      snn::inject_binary(sim, s.bus, values.back(), 1 + period * r);
    }
    snn::SimConfig cfg;
    cfg.max_time = 1 + period * rounds + 5;
    sim.run(cfg);
    for (int r = 0; r < rounds; ++r) {
      EXPECT_EQ(read_latched(sim, s.latches[static_cast<std::size_t>(r)]),
                values[static_cast<std::size_t>(r)])
          << "trial " << trial << " round " << r;
    }
  }
}

}  // namespace
}  // namespace sga::circuits
