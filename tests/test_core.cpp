// Tests for core utilities: RNG determinism, statistics, power-law fitting,
// bit helpers, and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/bitops.h"
#include "core/error.h"
#include "core/random.h"
#include "core/stats.h"
#include "core/table.h"

namespace sga {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), InvalidArgument);
}

TEST(Rng, Uniform01CoversUnitInterval) {
  Rng rng(11);
  double lo = 1, hi = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.uniform_int(0, 3)];
  for (const int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  auto sorted = w;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_THROW(s.mean(), InvalidArgument);
}

TEST(Fit, ExactLine) {
  const auto f = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Fit, PowerLawRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 10; x <= 1e4; x *= 2) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 1.5));
  }
  const auto f = fit_power_law(xs, ys);
  EXPECT_NEAR(f.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.5, 1e-6);
}

TEST(Fit, PowerLawRejectsNonPositive) {
  EXPECT_THROW(fit_power_law({1, 2}, {0, 1}), InvalidArgument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_THROW(median({}), InvalidArgument);
}

TEST(Bitops, BitsFor) {
  EXPECT_EQ(bits_for(0), 1);
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 2);
  EXPECT_EQ(bits_for(7), 3);
  EXPECT_EQ(bits_for(8), 4);
}

TEST(Bitops, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
  EXPECT_THROW(ceil_log2(0), InvalidArgument);
}

TEST(Bitops, BitOfAndMask) {
  EXPECT_EQ(bit_of(0b1010, 1), 1);
  EXPECT_EQ(bit_of(0b1010, 2), 0);
  EXPECT_EQ(mask_bits(4), 0xFULL);
  EXPECT_THROW(mask_bits(0), InvalidArgument);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"a", "bb"});
  t.set_title("demo");
  t.add_row({"1", "22"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| 333 |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only one"}), InvalidArgument);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-5)), "-5");
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::sci(12345.0, 1).substr(0, 4), "1.2e");
}

}  // namespace
}  // namespace sga
