// Delta-packed storage tests (ARCHITECTURE.md §1.11; ISSUE 10).
//
// The load-bearing suite is DIFFERENTIAL: the packed encoding must be
// event-for-event identical to the flat narrow and wide oracles across
// every engine variant — both queue kinds, both fan-out kinds, cause
// recording on and off, and the sharded engine at S ∈ {1, 2, 8} — because
// packing only changes how target columns are STORED, never what is
// delivered. On top of that: the kAuto selection threshold, the
// steady-state allocation-free contract (pool_misses == 0 with the decode
// scratch in play), the patch surface (weights yes, delays no), the
// snapshot fingerprint (a packed image refuses a flat-frozen network, with
// a typed section tag), and the io text v3 surface including four hostile
// inputs that must die in validation, not in a decode loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/error.h"
#include "core/random.h"
#include "snn/compiled_network.h"
#include "snn/io.h"
#include "snn/network.h"
#include "snn/parallel_sim.h"
#include "snn/simulator.h"
#include "snn/snapshot.h"
#include "snn/storage.h"

namespace sga::snn {
namespace {

struct Workload {
  Network net;
  std::vector<std::pair<NeuronId, Time>> injections;
};

/// Random integer-weight LIF network + injections (the test_snapshot
/// recipe): integer weights and thresholds keep every engine bit-exact
/// regardless of delivery order, so differential comparisons can demand
/// full equality — and the weights round-trip through f32, so the packed
/// freeze keeps its narrow weight column.
Workload make_workload(std::uint64_t seed, std::size_t n, std::size_t m,
                       Delay max_delay) {
  Rng rng(seed);
  Workload w;
  for (std::size_t i = 0; i < n; ++i) {
    NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    p.tau = rng.bernoulli(0.3) ? 1.0 : 0.0;
    w.net.add_neuron(p);
  }
  const auto last = static_cast<std::int64_t>(n) - 1;
  for (std::size_t e = 0; e < m; ++e) {
    const auto from = static_cast<NeuronId>(rng.uniform_int(0, last));
    const auto to = static_cast<NeuronId>(rng.uniform_int(0, last));
    SynWeight wt = static_cast<SynWeight>(rng.uniform_int(1, 3));
    if (rng.bernoulli(0.15)) wt = -wt;
    w.net.add_synapse(from, to, wt, rng.uniform_int(1, max_delay));
  }
  const std::size_t ni = 2 + n / 8;
  for (std::size_t i = 0; i < ni; ++i) {
    w.injections.emplace_back(static_cast<NeuronId>(rng.uniform_int(0, last)),
                              rng.uniform_int(0, 4));
  }
  return w;
}

SimConfig recording_config(bool causes) {
  SimConfig cfg;
  cfg.record_spike_log = true;
  cfg.record_causes = causes;
  cfg.max_time = 400;  // bound cyclic workloads
  return cfg;
}

struct RunResult {
  SimStats stats;
  std::vector<std::pair<Time, NeuronId>> log;
  std::vector<Time> first;
};

RunResult run_serial(const CompiledNetwork& net, const Workload& w,
                     QueueKind q, FanoutKind f, bool causes) {
  Simulator sim(net, q, f);
  for (const auto& [id, t] : w.injections) sim.inject_spike(id, t);
  RunResult r;
  r.stats = sim.run(recording_config(causes));
  r.log = sim.spike_log();
  r.first = sim.first_spikes();
  return r;
}

std::vector<std::pair<Time, NeuronId>> sorted_log(
    std::vector<std::pair<Time, NeuronId>> log) {
  std::sort(log.begin(), log.end());
  return log;
}

void expect_runs_eq(const RunResult& a, const RunResult& b,
                    const std::string& what) {
  EXPECT_EQ(a.stats.spikes, b.stats.spikes) << what;
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries) << what;
  EXPECT_EQ(a.stats.event_times, b.stats.event_times) << what;
  EXPECT_EQ(a.stats.end_time, b.stats.end_time) << what;
  EXPECT_EQ(a.log, b.log) << what;
  EXPECT_EQ(a.first, b.first) << what;
}

// ---- Width selection ----------------------------------------------------

TEST(PackedStorage, AutoSelectsPackedOnlyAtScale) {
  // Below the auto threshold kAuto keeps the flat narrow layout (the
  // per-block headers would eat the delta savings on tiny columns)…
  Workload small = make_workload(0xA0, 60, 400, 8);
  const CompiledNetwork flat(small.net, StoragePolicy::kAuto);
  EXPECT_TRUE(flat.storage_widths().narrow);
  EXPECT_FALSE(flat.storage_widths().packed);
  EXPECT_EQ(encoding_code(flat.storage_widths()), 1);
  EXPECT_STREQ(encoding_name(flat.storage_widths()), "narrow");

  // …but an explicit kPacked request packs at any size…
  const CompiledNetwork packed(small.net, StoragePolicy::kPacked);
  EXPECT_TRUE(packed.storage_widths().packed);
  EXPECT_EQ(encoding_code(packed.storage_widths()), 2);
  EXPECT_STREQ(encoding_name(packed.storage_widths()), "packed");

  // …and at m >= kPackedAutoMinSynapses kAuto flips to packed on its own,
  // while kNarrow / kWide stay the explicit oracles.
  Workload big = make_workload(0xA1, 400, kPackedAutoMinSynapses + 500, 8);
  const CompiledNetwork abig(big.net, StoragePolicy::kAuto);
  EXPECT_TRUE(abig.storage_widths().packed);
  const CompiledNetwork nbig(big.net, StoragePolicy::kNarrow);
  EXPECT_TRUE(nbig.storage_widths().narrow);
  EXPECT_FALSE(nbig.storage_widths().packed);
  const CompiledNetwork wbig(big.net, StoragePolicy::kWide);
  EXPECT_FALSE(wbig.storage_widths().narrow);
  EXPECT_FALSE(wbig.storage_widths().packed);
  EXPECT_EQ(encoding_code(wbig.storage_widths()), 0);

  // The auto flip exists because it shrinks: packed under narrow here.
  EXPECT_LT(abig.csr_storage_bytes(), nbig.csr_storage_bytes());
}

// ---- The differential fuzz ----------------------------------------------

TEST(PackedStorageFuzz, SerialEnginesAgreeEventForEvent) {
  for (const std::uint64_t seed : {0xF1ull, 0xF2ull, 0xF3ull}) {
    Workload w = make_workload(seed, 160, 1400, 10);
    const CompiledNetwork packed(w.net, StoragePolicy::kPacked);
    const CompiledNetwork narrow(w.net, StoragePolicy::kNarrow);
    const CompiledNetwork wide(w.net, StoragePolicy::kWide);
    ASSERT_TRUE(packed.storage_widths().packed);
    packed.verify_invariants();

    for (const bool causes : {false, true}) {
      const RunResult ref = run_serial(narrow, w, QueueKind::kCalendar,
                                       FanoutKind::kSegmented, causes);
      const RunResult wref = run_serial(wide, w, QueueKind::kCalendar,
                                        FanoutKind::kSegmented, causes);
      expect_runs_eq(wref, ref, "wide oracle seed " + std::to_string(seed));
      for (const QueueKind q : {QueueKind::kCalendar, QueueKind::kMap}) {
        for (const FanoutKind f :
             {FanoutKind::kSegmented, FanoutKind::kPerSynapse}) {
          const RunResult p = run_serial(packed, w, q, f, causes);
          expect_runs_eq(p, ref,
                         "packed seed " + std::to_string(seed) + " q" +
                             std::to_string(static_cast<int>(q)) + " f" +
                             std::to_string(static_cast<int>(f)) +
                             (causes ? " causes" : ""));
          EXPECT_EQ(p.stats.storage_encoding, 2);
          EXPECT_GT(p.stats.decode_blocks, 0u);
        }
      }
      EXPECT_EQ(ref.stats.decode_blocks, 0u);
    }
  }
}

TEST(PackedStorageFuzz, ParallelEngineAgrees) {
  Workload w = make_workload(0xAB, 220, 2000, 9);
  const CompiledNetwork packed(w.net, StoragePolicy::kPacked);
  const CompiledNetwork narrow(w.net, StoragePolicy::kNarrow);
  const RunResult ref = run_serial(narrow, w, QueueKind::kCalendar,
                                   FanoutKind::kSegmented, true);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    ParallelConfig pcfg;
    pcfg.num_shards = shards;
    ParallelSimulator psim(packed, pcfg);
    for (const auto& [id, t] : w.injections) psim.inject_spike(id, t);
    const SimStats stats = psim.run(recording_config(true));
    EXPECT_EQ(stats.spikes, ref.stats.spikes) << "S=" << shards;
    EXPECT_EQ(stats.deliveries, ref.stats.deliveries) << "S=" << shards;
    EXPECT_EQ(stats.end_time, ref.stats.end_time) << "S=" << shards;
    EXPECT_EQ(stats.storage_encoding, 2) << "S=" << shards;
    EXPECT_EQ(sorted_log(psim.spike_log()), sorted_log(ref.log))
        << "S=" << shards;
    for (NeuronId i = 0; i < 220; ++i) {
      EXPECT_EQ(psim.first_spike(i), ref.first[i]) << "S=" << shards
                                                   << " neuron " << i;
    }
  }
}

// ---- Steady-state allocation-free contract ------------------------------

TEST(PackedStorage, SteadyStateRerunHasZeroPoolMisses) {
  Workload w = make_workload(0xB0, 160, 1400, 10);
  const CompiledNetwork packed(w.net, StoragePolicy::kPacked);
  Simulator sim(packed);
  for (const auto& [id, t] : w.injections) sim.inject_spike(id, t);
  const SimStats first = sim.run(recording_config(false));
  EXPECT_GT(first.decode_blocks, 0u);

  // Same-shaped rerun: the bucket pool AND the row-decode scratch are both
  // warm, so nothing allocates.
  sim.reset();
  for (const auto& [id, t] : w.injections) sim.inject_spike(id, t);
  const SimStats second = sim.run(recording_config(false));
  EXPECT_EQ(second.pool_misses, 0u);
  EXPECT_EQ(second.spikes, first.spikes);
  EXPECT_EQ(second.deliveries, first.deliveries);
  EXPECT_EQ(second.decode_blocks, first.decode_blocks);
}

// ---- Patch surface ------------------------------------------------------

TEST(PackedStorage, PatchWeightsWorksPatchDelaysRefuses) {
  Workload w = make_workload(0xC0, 80, 600, 6);
  CompiledNetwork packed(w.net, StoragePolicy::kPacked);
  CompiledNetwork narrow(w.net, StoragePolicy::kNarrow);

  // Weights stay a flat column under packing, so in-place weight patching
  // keeps working — and keeps matching the narrow oracle.
  const std::vector<std::pair<std::size_t, SynWeight>> edits = {
      {0, 2.0}, {7, -1.0}, {packed.num_synapses() - 1, 3.0}};
  packed.patch_weights(edits);
  narrow.patch_weights(edits);
  for (const auto& [k, v] : edits) {
    EXPECT_EQ(packed.syn_weight(k), v);
    EXPECT_EQ(narrow.syn_weight(k), v);
  }
  const RunResult p = run_serial(packed, w, QueueKind::kCalendar,
                                 FanoutKind::kSegmented, false);
  const RunResult n = run_serial(narrow, w, QueueKind::kCalendar,
                                 FanoutKind::kSegmented, false);
  expect_runs_eq(p, n, "after patch_weights");

  // Delay patching would have to re-run the delta packer (runs can merge or
  // split); the packed encoding refuses instead of silently re-encoding.
  EXPECT_THROW(packed.patch_delays({{0, 3}}), InvalidArgument);
  narrow.patch_delays({{0, 3}});  // the flat encodings keep the capability
}

// ---- Snapshot fingerprint -----------------------------------------------

TEST(PackedSnapshot, EncodingIsFingerprintedAndTyped) {
  Workload w = make_workload(0xD0, 100, 900, 8);
  const CompiledNetwork packed(w.net, StoragePolicy::kPacked);
  const CompiledNetwork narrow(w.net, StoragePolicy::kNarrow);

  Simulator src(packed);
  for (const auto& [id, t] : w.injections) src.inject_spike(id, t);
  src.run(recording_config(true));
  const std::vector<std::uint8_t> bytes = src.snapshot();

  // Same graph, flat freeze: the encoding flag alone must refuse the
  // restore, with the typed section tag (no string matching needed).
  Simulator flat(narrow);
  try {
    flat.restore(bytes);
    FAIL() << "packed snapshot restored into a narrow-frozen network";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.typed_section(), SnapshotError::kFingerprint);
    EXPECT_EQ(e.section(), "fingerprint");
  }

  // A malformed stream that lies about the encoding is equally refused:
  // parse, flip the packed flag, re-serialize (parse_snapshot does no
  // semantic validation, so the forgery survives to validate_snapshot_for).
  SnapshotImage img = parse_snapshot(bytes);
  EXPECT_TRUE(img.widths.packed);
  img.widths.packed = false;
  const std::vector<std::uint8_t> forged = serialize_snapshot(img);
  Simulator target(packed);
  EXPECT_THROW(target.restore(forged), SnapshotError);

  // The honest stream restores into a packed-frozen simulator exactly.
  Simulator dst(packed);
  dst.restore(bytes);
  for (NeuronId i = 0; i < 100; ++i) {
    EXPECT_EQ(dst.first_spike(i), src.first_spike(i)) << "neuron " << i;
    EXPECT_EQ(dst.spike_count(i), src.spike_count(i)) << "neuron " << i;
  }
}

// ---- io text v3 ---------------------------------------------------------

std::vector<std::string> split_tokens(const std::string& text) {
  std::istringstream is(text);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

std::string join_tokens(const std::vector<std::string>& toks) {
  std::string out;
  for (const auto& t : toks) {
    out += t;
    out += ' ';
  }
  return out;
}

std::size_t find_token(const std::vector<std::string>& toks,
                       const std::string& want, std::size_t from = 0) {
  for (std::size_t i = from; i < toks.size(); ++i) {
    if (toks[i] == want) return i;
  }
  ADD_FAILURE() << "token '" << want << "' not found";
  return toks.size();
}

CompiledNetwork parse_text(const std::string& text) {
  std::istringstream is(text);
  return read_compiled_network(is);
}

TEST(PackedIo, V3RoundTripKeepsTheEncodingAndTheEvents) {
  Workload w = make_workload(0xE0, 120, 1000, 8);
  w.net.define_group("inputs", {0, 1, 2});
  const CompiledNetwork packed(w.net, StoragePolicy::kPacked);

  std::ostringstream os;
  write_network(os, packed);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("snn 3\n", 0), 0u) << "packed artifacts write v3";
  EXPECT_NE(text.find("storage packed target u32"), std::string::npos);

  const CompiledNetwork back = parse_text(text);
  EXPECT_TRUE(back.storage_widths().packed);
  EXPECT_EQ(back.storage_widths(), packed.storage_widths());
  EXPECT_EQ(back.num_neurons(), packed.num_neurons());
  EXPECT_EQ(back.num_synapses(), packed.num_synapses());
  EXPECT_EQ(back.csr_storage_bytes(), packed.csr_storage_bytes());
  EXPECT_EQ(back.group("inputs"), packed.group("inputs"));
  const RunResult a = run_serial(packed, w, QueueKind::kCalendar,
                                 FanoutKind::kSegmented, false);
  const RunResult b = run_serial(back, w, QueueKind::kCalendar,
                                 FanoutKind::kSegmented, false);
  expect_runs_eq(a, b, "io v3 round trip");

  // read_network (builder form) decodes through the verified compiled
  // artifact; re-freezing it flat must still agree event-for-event.
  std::istringstream is(text);
  Network builder = read_network(is);
  const CompiledNetwork flat(builder, StoragePolicy::kNarrow);
  EXPECT_FALSE(flat.storage_widths().packed);
  const RunResult c = run_serial(flat, w, QueueKind::kCalendar,
                                 FanoutKind::kSegmented, false);
  expect_runs_eq(a, c, "io v3 via builder");

  // Non-packed artifacts keep writing version 2 byte-for-byte.
  std::ostringstream os2;
  write_network(os2, CompiledNetwork(w.net, StoragePolicy::kNarrow));
  EXPECT_EQ(os2.str().rfind("snn 2\n", 0), 0u);
}

TEST(PackedIo, HostilePackedInputsDieInValidation) {
  Workload w = make_workload(0xE1, 90, 800, 8);
  const CompiledNetwork packed(w.net, StoragePolicy::kPacked);
  std::ostringstream os;
  write_network(os, packed);
  const std::vector<std::string> good = split_tokens(os.str());
  ASSERT_NO_THROW(parse_text(join_tokens(good)));  // surgery baseline

  const std::size_t words_at = find_token(good, "words");
  const std::size_t nwords = std::stoul(good[words_at + 1]);
  ASSERT_GE(nwords, 1u) << "workload must produce at least one pack word";
  const std::size_t blocks_at = find_token(good, "blocks");

  // (1) Truncated block words: one word shaved off (header adjusted so the
  // token stream still parses) — the exact per-block word sum catches it.
  {
    std::vector<std::string> t = good;
    t[words_at + 1] = std::to_string(nwords - 1);
    t.erase(t.begin() + static_cast<std::ptrdiff_t>(words_at + 1 + nwords));
    EXPECT_THROW(parse_text(join_tokens(t)), InvalidArgument);
  }

  // (2) A block's bit width edited to 0: legal value, wrong word sum.
  {
    std::vector<std::string> t = good;
    std::size_t b = find_token(t, "b", blocks_at);
    while (b < t.size() && t[b + 2] == "0") b = find_token(t, "b", b + 1);
    ASSERT_LT(b, t.size());
    t[b + 2] = "0";
    EXPECT_THROW(parse_text(join_tokens(t)), InvalidArgument);
  }

  // (3) Bit width above 32: rejected outright, before any table is sized.
  {
    std::vector<std::string> t = good;
    const std::size_t b = find_token(t, "b", blocks_at);
    t[b + 2] = "33";
    EXPECT_THROW(parse_text(join_tokens(t)), InvalidArgument);
  }

  // (4) A block base pushed past the neuron count: every decoded target is
  // range-checked before the network is handed out.
  {
    std::vector<std::string> t = good;
    const std::size_t b = find_token(t, "b", blocks_at);
    t[b + 1] = std::to_string(packed.num_neurons());
    EXPECT_THROW(parse_text(join_tokens(t)), InvalidArgument);
  }
}

}  // namespace
}  // namespace sga::snn
