// Tests for SNN serialization (round trips, behavioural equivalence of the
// reloaded network, malformed-input rejection) and the one-hot encoder
// circuit.
#include <gtest/gtest.h>

#include <sstream>

#include "circuits/encoder.h"
#include "circuits/max_circuits.h"
#include "core/random.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "snn/io.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::snn {
namespace {

TEST(SnnIo, RoundTripPreservesStructure) {
  Network net;
  const NeuronId a = net.add_neuron(NeuronParams{-1.5, 2, 0.25});
  const NeuronId b = net.add_neuron(NeuronParams{0, 1, 1.0});
  net.add_synapse(a, b, 0.75, 3);
  net.add_synapse(b, a, -2, 1);
  net.add_synapse(b, b, 1, 7);
  net.define_group("inputs", {a});
  net.define_group("outputs", {b, a});

  std::stringstream ss;
  write_network(ss, net);
  const Network copy = read_network(ss);

  ASSERT_EQ(copy.num_neurons(), 2u);
  ASSERT_EQ(copy.num_synapses(), 3u);
  EXPECT_DOUBLE_EQ(copy.params(a).v_reset, -1.5);
  EXPECT_DOUBLE_EQ(copy.params(a).tau, 0.25);
  EXPECT_EQ(copy.params(b).v_threshold, 1);
  ASSERT_EQ(copy.out_synapses(b).size(), 2u);
  EXPECT_EQ(copy.out_synapses(b)[1].delay, 7);
  EXPECT_DOUBLE_EQ(copy.out_synapses(a)[0].weight, 0.75);
  EXPECT_EQ(copy.group("outputs"), (std::vector<NeuronId>{b, a}));
}

TEST(SnnIo, ReloadedNetworkBehavesIdentically) {
  // Serialize a compiled SSSP network, reload it, and get the same
  // distances out of the reloaded copy.
  Rng rng(0x10A);
  const Graph g = make_random_graph(15, 50, {1, 8}, rng);
  const Network original = nga::build_sssp_network(g);
  std::stringstream ss;
  write_network(ss, original);
  const Network reloaded = read_network(ss);

  auto run = [&](const Network& net) {
    Simulator sim(net);
    sim.inject_spike(0, 0);
    SimConfig cfg;
    cfg.record_spike_log = true;
    sim.run(cfg);
    return sim.spike_log();
  };
  EXPECT_EQ(run(original), run(reloaded));
}

TEST(SnnIo, CompiledFormRoundTrips) {
  // write(compiled) → read_compiled_network must reproduce the exact CSR
  // image: same packing, same aggregates, same behaviour.
  Rng rng(0x10B);
  const Graph g = make_random_graph(12, 40, {1, 6}, rng);
  const CompiledNetwork original = nga::build_sssp_network(g).compile();

  std::stringstream ss;
  write_network(ss, original);
  const CompiledNetwork reloaded = read_compiled_network(ss);

  ASSERT_EQ(reloaded.num_neurons(), original.num_neurons());
  ASSERT_EQ(reloaded.num_synapses(), original.num_synapses());
  EXPECT_EQ(reloaded.max_delay(), original.max_delay());
  for (NeuronId i = 0; i < original.num_neurons(); ++i) {
    EXPECT_EQ(reloaded.out_begin(i), original.out_begin(i)) << "neuron " << i;
    EXPECT_DOUBLE_EQ(reloaded.positive_in_weight(i),
                     original.positive_in_weight(i))
        << "neuron " << i;
  }
  for (std::size_t k = 0; k < original.num_synapses(); ++k) {
    EXPECT_EQ(reloaded.syn_target(k), original.syn_target(k)) << "syn " << k;
    EXPECT_DOUBLE_EQ(reloaded.syn_weight(k), original.syn_weight(k))
        << "syn " << k;
    EXPECT_EQ(reloaded.syn_delay(k), original.syn_delay(k)) << "syn " << k;
  }
  EXPECT_EQ(reloaded.group_names(), original.group_names());

  auto run = [](const CompiledNetwork& net) {
    Simulator sim(net);
    sim.inject_spike(0, 0);
    SimConfig cfg;
    cfg.record_spike_log = true;
    sim.run(cfg);
    return sim.spike_log();
  };
  EXPECT_EQ(run(original), run(reloaded));
}

TEST(SnnIo, RejectsMalformedInput) {
  {
    std::stringstream ss("nope 1\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    // Version 2 without its mandatory storage line is truncated.
    std::stringstream ss("snn 2\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    std::stringstream ss("snn 3\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);  // unknown version
  }
  {
    // Unknown width tag in the storage line.
    std::stringstream ss(
        "snn 2\nstorage narrow target u64 delay u8 weight f32\nneurons 0\n"
        "synapses 0\ngroups 0\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    std::stringstream ss("snn 1\nneurons 1\nn 0 1 0\nsynapses 1\ns 0 5 1 1\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);  // endpoint out of range
  }
  {
    std::stringstream ss("snn 1\nneurons 1\nn 0 1 0\nsynapses 1\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);  // truncated
  }
  {
    // Synapse line cut off mid-record: "s 0" with no target/weight/delay.
    std::stringstream ss("snn 1\nneurons 1\nn 0 1 0\nsynapses 1\ns 0\n");
    EXPECT_THROW(read_compiled_network(ss), InvalidArgument);
  }
  {
    // Delay below the minimum synaptic delay δ = 1.
    std::stringstream ss(
        "snn 1\nneurons 2\nn 0 1 0\nn 0 1 0\nsynapses 1\ns 0 1 1 0\n");
    EXPECT_THROW(read_compiled_network(ss), InvalidArgument);
  }
  {
    // Group member id out of range (only neuron 0 exists).
    std::stringstream ss(
        "snn 1\nneurons 1\nn 0 1 0\nsynapses 0\ngroups 1\ng out 1 5\n");
    EXPECT_THROW(read_compiled_network(ss), InvalidArgument);
  }
}

TEST(SnnIo, RejectsHostileCacheInput) {
  // Untrusted-cache hardening (docs/SERVICE.md): a hostile or corrupt file
  // must be rejected at parse time, BEFORE any implausible allocation and
  // before the simulator's unchecked hot-path accessors can see it.
  {
    // Negative count: parsing into an unsigned would wrap to 2^64 - 1 and
    // attempt a galactic vector resize.
    std::stringstream ss("snn 1\nneurons -1\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    // Implausibly huge count (beyond the 2^30 ceiling).
    std::stringstream ss("snn 1\nneurons 999999999999999999\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    std::stringstream ss("snn 1\nneurons 0\nsynapses 99999999999\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    // NaN decay: operator>> accepts "nan" since C++11, and a NaN τ would
    // make every threshold comparison silently false.
    std::stringstream ss("snn 1\nneurons 1\nn 0 1 nan\nsynapses 0\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    // Infinite threshold.
    std::stringstream ss("snn 1\nneurons 1\nn 0 inf 0\nsynapses 0\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    // Non-finite synapse weight.
    std::stringstream ss(
        "snn 1\nneurons 2\nn 0 1 0\nn 0 1 0\nsynapses 1\ns 0 1 inf 1\n");
    EXPECT_THROW(read_compiled_network(ss), InvalidArgument);
  }
  {
    // Duplicate group name: define_group would silently overwrite the
    // first (validated) definition with the second.
    std::stringstream ss(
        "snn 1\nneurons 2\nn 0 1 0\nn 0 1 0\nsynapses 0\n"
        "groups 2\ng out 1 0\ng out 1 1\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
  {
    // Group claiming more members than the network has neurons.
    std::stringstream ss(
        "snn 1\nneurons 1\nn 0 1 0\nsynapses 0\ngroups 1\ng out 7 0\n");
    EXPECT_THROW(read_network(ss), InvalidArgument);
  }
}

TEST(SnnIo, V2HeaderDeclaresTheFrozenWidths) {
  // The writer emits version 2 with a storage line reflecting the frozen
  // widths, and the reader re-freezes under the declared policy: a wide
  // artifact reloads wide, a narrow one re-narrows.
  Rng rng(0x10D);
  const Graph g = make_random_graph(10, 30, {1, 5}, rng);
  const Network net = nga::build_sssp_network(g);
  {
    std::stringstream ss;
    write_network(ss, net.compile());
    EXPECT_NE(ss.str().find("snn 2\nstorage narrow target u16 delay u8 "
                            "weight f32\n"),
              std::string::npos)
        << ss.str().substr(0, 80);
    const CompiledNetwork reloaded = read_compiled_network(ss);
    EXPECT_TRUE(reloaded.storage_widths().narrow);
  }
  {
    std::stringstream ss;
    write_network(ss, net.compile(StoragePolicy::kWide));
    EXPECT_NE(ss.str().find("storage wide target u32 delay i64 weight f64"),
              std::string::npos)
        << ss.str().substr(0, 80);
    const CompiledNetwork reloaded = read_compiled_network(ss);
    EXPECT_FALSE(reloaded.storage_widths().narrow);
  }
}

TEST(SnnIo, V1FilesRemainReadable) {
  // A pre-§1.8 file (no storage line) parses under the legacy rules and
  // freezes under the default policy.
  std::stringstream ss(
      "snn 1\nneurons 2\nn 0 1 0\nn 0 1 0\nsynapses 1\ns 0 1 1 3\n"
      "groups 1\ng out 1 1\n");
  const CompiledNetwork net = read_compiled_network(ss);
  EXPECT_EQ(net.num_neurons(), 2u);
  EXPECT_EQ(net.num_synapses(), 1u);
  EXPECT_EQ(net.max_delay(), 3);
  EXPECT_TRUE(net.storage_widths().narrow);  // default kAuto
  EXPECT_EQ(net.group("out"), (std::vector<NeuronId>{1}));
}

TEST(SnnIo, CountCeilingsDeriveFromTheDeclaredWidth) {
  {
    // A u16-target file cannot address 70000 neurons: rejected as a typed
    // CountLimitError naming the offending count, before the parse loop.
    std::stringstream ss(
        "snn 2\nstorage narrow target u16 delay u8 weight f32\n"
        "neurons 70000\n");
    try {
      read_network(ss);
      FAIL() << "expected CountLimitError";
    } catch (const CountLimitError& e) {
      EXPECT_EQ(e.field(), "neuron count");
      EXPECT_EQ(e.value(), 70000);
      EXPECT_EQ(e.limit(), 1LL << 16);
      EXPECT_NE(std::string(e.what()).find("70000"), std::string::npos);
    }
  }
  {
    // The same count under a u32 target is fine (the file is then
    // truncated, which is a different, later error).
    std::stringstream ss(
        "snn 2\nstorage narrow target u32 delay u8 weight f32\n"
        "neurons 70000\n");
    try {
      read_network(ss);
      FAIL() << "expected truncation failure";
    } catch (const CountLimitError&) {
      FAIL() << "count within the declared ceiling must not be rejected";
    } catch (const InvalidArgument&) {
      // truncated input — expected
    }
  }
  {
    // Synapse counts are capped by the u32 segment-index width.
    std::stringstream ss(
        "snn 2\nstorage narrow target u32 delay u8 weight f32\n"
        "neurons 0\nsynapses 4294967296\n");
    try {
      read_network(ss);
      FAIL() << "expected CountLimitError";
    } catch (const CountLimitError& e) {
      EXPECT_EQ(e.field(), "synapse count");
      EXPECT_EQ(e.value(), 4294967296LL);
    }
  }
  {
    // CountLimitError is still an InvalidArgument: v1 hostile headers keep
    // failing for existing catch sites.
    std::stringstream ss("snn 1\nneurons 9999999999\n");
    EXPECT_THROW(read_network(ss), CountLimitError);
    std::stringstream ss2("snn 1\nneurons 9999999999\n");
    EXPECT_THROW(read_network(ss2), InvalidArgument);
  }
}

TEST(SnnIo, VerifyInvariantsAcceptsHealthyNetworks) {
  // verify_invariants() is the read_compiled_network defense-in-depth pass;
  // it must accept everything compile() produces — including the empty
  // placeholder network — or the service cache could never load a valid
  // artifact.
  CompiledNetwork{}.verify_invariants();

  Rng rng(0x10C);
  const Graph g = make_random_graph(20, 80, {1, 9}, rng);
  const CompiledNetwork net = nga::build_sssp_network(g).compile();
  net.verify_invariants();

  std::stringstream ss;
  write_network(ss, net);
  const CompiledNetwork reloaded = read_compiled_network(ss);  // verifies too
  EXPECT_EQ(reloaded.num_synapses(), net.num_synapses());
}

TEST(Encoder, EncodesSingleHotLines) {
  for (int d : {1, 2, 5, 8, 11}) {
    for (int hot = 0; hot < d; ++hot) {
      Network net;
      circuits::CircuitBuilder cb(net);
      const auto e = circuits::build_encoder(cb, d);
      Simulator sim(net);
      sim.inject_spike(e.inputs[static_cast<std::size_t>(hot)], 0);
      SimConfig cfg;
      cfg.max_time = e.depth;
      sim.run(cfg);
      EXPECT_EQ(decode_binary_at(sim, e.index, e.depth),
                static_cast<std::uint64_t>(hot))
          << "d=" << d << " hot=" << hot;
      EXPECT_TRUE(sim.fired_at(e.any, e.depth));
    }
  }
}

TEST(Encoder, SilentInputsGiveSilentOutput) {
  Network net;
  circuits::CircuitBuilder cb(net);
  const auto e = circuits::build_encoder(cb, 6);
  Simulator sim(net);
  sim.run();
  EXPECT_EQ(sim.first_spike(e.any), kNever);
}

TEST(Encoder, EncodesBruteForceMaxWinnerIndex) {
  // Compose: brute-force max (unique winner) -> encoder = argmax circuit.
  Network net;
  circuits::CircuitBuilder cb(net);
  const auto mc = circuits::build_max_brute_force(cb, 5, 4);
  const auto e = circuits::build_encoder(cb, 5);
  for (int i = 0; i < 5; ++i) {
    net.add_synapse(mc.winners[static_cast<std::size_t>(i)],
                    e.inputs[static_cast<std::size_t>(i)], 1, 1);
  }
  Simulator sim(net);
  sim.inject_spike(mc.enable, 0);
  const std::vector<std::uint64_t> vals{3, 9, 2, 15, 8};
  for (std::size_t i = 0; i < vals.size(); ++i) {
    inject_binary(sim, mc.inputs[i], vals[i], 0);
  }
  SimConfig cfg;
  cfg.max_time = mc.winner_level + 1 + e.depth;
  sim.run(cfg);
  EXPECT_EQ(decode_binary_at(sim, e.index, mc.winner_level + 1 + e.depth), 3u);
}

}  // namespace
}  // namespace sga::snn
