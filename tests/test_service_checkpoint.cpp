// Crash-recovery tests for the query service's checkpointing loop
// (svc/checkpoint.h; docs/PERSISTENCE.md).
//
// The contract under test: a ticketed SSSP query served through periodic
// pause/snapshot checkpoints answers EXACTLY like an uncheckpointed run;
// a worker killed at a checkpoint boundary (injected via the store's
// on_checkpoint hook) leaves a recoverable checkpoint behind, and
// resubmitting with resume = true completes the query with the identical
// answer — on whatever worker picks it up.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/random.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "svc/checkpoint.h"
#include "svc/service.h"

namespace sga::svc {
namespace {

Graph test_graph(std::uint64_t seed, std::size_t n, std::size_t m,
                 Weight max_len = 9) {
  Rng rng(seed);
  return make_random_graph(n, m, {1, max_len}, rng);
}

/// Interval that guarantees several checkpoints for `source` on `g`.
Time interval_for(const Graph& g, VertexId source) {
  nga::SpikingSsspOptions opt;
  opt.source = source;
  const nga::SpikingSsspResult ref = nga::spiking_sssp(g, opt);
  const Time interval = ref.execution_time / 5;
  return interval > 0 ? interval : 1;
}

TEST(CheckpointStore, PutGetEraseLatestWins) {
  CheckpointStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.get(7).has_value());
  Checkpoint a;
  a.sequence = 1;
  a.snapshot = {1, 2, 3};
  store.put(7, a);
  Checkpoint b;
  b.sequence = 2;
  b.snapshot = {4, 5};
  store.put(7, b);
  EXPECT_EQ(store.size(), 1u);
  const auto got = store.get(7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->sequence, 2u);
  EXPECT_EQ(got->snapshot, (std::vector<std::uint8_t>{4, 5}));
  EXPECT_TRUE(store.erase(7));
  EXPECT_FALSE(store.erase(7));
  EXPECT_EQ(store.size(), 0u);
}

TEST(QueryServiceCheckpoint, CheckpointedAnswersMatchPlain) {
  const Graph g = test_graph(0x61, 40, 160);
  CheckpointStore store;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.checkpoint_interval = interval_for(g, 0);
  opt.checkpoints = &store;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  for (VertexId s = 0; s < 8; ++s) {
    nga::SpikingSsspOptions ref_opt;
    ref_opt.source = s;
    const nga::SpikingSsspResult ref = nga::spiking_sssp(g, ref_opt);

    QueryRequest req;
    req.kind = QueryKind::kSssp;
    req.graph = handle;
    req.source = s;
    req.ticket = 100 + s;
    const QueryResult res = service.query(std::move(req));
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.dist, ref.dist) << "source " << s;
    EXPECT_EQ(res.parent, ref.parent) << "source " << s;
    EXPECT_EQ(res.execution_time, ref.execution_time);
    // Event-for-event through the pauses: the run's final stats count
    // everything from t = 0, exactly like the uninterrupted reference.
    EXPECT_EQ(res.sim.spikes, ref.sim.spikes) << "source " << s;
    EXPECT_EQ(res.sim.deliveries, ref.sim.deliveries);
    EXPECT_EQ(res.sim.event_times, ref.sim.event_times);
  }

  // Completed queries dropped their recovery points.
  EXPECT_EQ(store.size(), 0u);
  // And checkpoints really happened.
  EXPECT_GT(service.metrics().counter("svc.checkpoints"), 0u);
  EXPECT_EQ(service.metrics().counter("svc.recoveries"), 0u);
}

TEST(QueryServiceCheckpoint, WorkerCrashRecoversFromTheLastCheckpoint) {
  const Graph g = test_graph(0x62, 40, 160);
  CheckpointStore store;
  ServiceOptions opt;
  opt.num_workers = 2;
  opt.checkpoint_interval = interval_for(g, 3);
  opt.checkpoints = &store;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  nga::SpikingSsspOptions ref_opt;
  ref_opt.source = 3;
  const nga::SpikingSsspResult ref = nga::spiking_sssp(g, ref_opt);

  // Kill the serving worker at the SECOND checkpoint boundary — after the
  // checkpoint is durable, mid-query. (The hook throws on the worker; the
  // serve fails kFailed; the worker itself survives to serve again, which
  // models crash-recovery without needing a process kill in-test.)
  store.on_checkpoint = [](std::uint64_t /*ticket*/, std::uint64_t seq) {
    if (seq == 2) throw std::runtime_error("injected worker crash");
  };

  QueryRequest req;
  req.kind = QueryKind::kSssp;
  req.graph = handle;
  req.source = 3;
  req.ticket = 42;
  const QueryResult crashed = service.query(QueryRequest{req});
  EXPECT_EQ(crashed.status, QueryStatus::kFailed);
  EXPECT_FALSE(crashed.error.empty());
  // The recovery point survived the crash.
  const auto cp = store.get(42);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->sequence, 2u);
  EXPECT_FALSE(cp->snapshot.empty());
  EXPECT_FALSE(cp->journal.empty());

  // Resume. The stored sequence continues (3, 4, ...), so the seq == 2
  // crash hook never re-fires; the query must complete with the identical
  // answer to an uninterrupted run.
  QueryRequest again = req;
  again.resume = true;
  const QueryResult res = service.query(std::move(again));
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.dist, ref.dist);
  EXPECT_EQ(res.parent, ref.parent);
  EXPECT_EQ(res.execution_time, ref.execution_time);
  EXPECT_EQ(res.sim.spikes, ref.sim.spikes);
  EXPECT_EQ(res.sim.deliveries, ref.sim.deliveries);
  EXPECT_EQ(res.sim.event_times, ref.sim.event_times);
  EXPECT_EQ(store.size(), 0u);  // completed: recovery point dropped
  EXPECT_GE(service.metrics().counter("svc.recoveries"), 1u);

  // The crashed worker's slot is not poisoned: a fresh un-ticketed query
  // on the same service still answers correctly.
  QueryRequest plain;
  plain.kind = QueryKind::kSssp;
  plain.graph = handle;
  plain.source = 3;
  const QueryResult pres = service.query(std::move(plain));
  ASSERT_TRUE(pres.ok()) << pres.error;
  EXPECT_EQ(pres.dist, ref.dist);
}

TEST(QueryServiceCheckpoint, ResumeWithUnknownTicketFails) {
  const Graph g = test_graph(0x63, 20, 80);
  CheckpointStore store;
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.checkpoint_interval = 4;
  opt.checkpoints = &store;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  QueryRequest req;
  req.kind = QueryKind::kSssp;
  req.graph = handle;
  req.source = 0;
  req.ticket = 999;
  req.resume = true;  // nothing was ever checkpointed under 999
  const QueryResult res = service.query(std::move(req));
  EXPECT_EQ(res.status, QueryStatus::kFailed);
  EXPECT_FALSE(res.error.empty());

  // resume without checkpointing configured at all is also a clean failure.
  QueryService bare;
  const std::uint64_t h2 = bare.add_graph(g);
  QueryRequest r2;
  r2.kind = QueryKind::kSssp;
  r2.graph = h2;
  r2.source = 0;
  r2.resume = true;
  EXPECT_EQ(bare.query(std::move(r2)).status, QueryStatus::kFailed);
}

TEST(QueryServiceCheckpoint, UnticketedRequestsBypassCheckpointing) {
  const Graph g = test_graph(0x64, 30, 120);
  CheckpointStore store;
  int hook_calls = 0;
  store.on_checkpoint = [&](std::uint64_t, std::uint64_t) { ++hook_calls; };
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.checkpoint_interval = 2;
  opt.checkpoints = &store;
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  nga::SpikingSsspOptions ref_opt;
  ref_opt.source = 5;
  const nga::SpikingSsspResult ref = nga::spiking_sssp(g, ref_opt);

  QueryRequest req;  // ticket stays 0: no checkpoint opt-in
  req.kind = QueryKind::kSssp;
  req.graph = handle;
  req.source = 5;
  const QueryResult res = service.query(std::move(req));
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.dist, ref.dist);
  EXPECT_EQ(hook_calls, 0);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(service.metrics().counter("svc.checkpoints"), 0u);
}

TEST(QueryServiceCheckpoint, TicketWithoutStoreServesPlainly) {
  // Interval set but no store: the ticket is inert, answers still correct.
  const Graph g = test_graph(0x65, 20, 80);
  ServiceOptions opt;
  opt.num_workers = 1;
  opt.checkpoint_interval = 2;  // checkpoints == nullptr disables it
  QueryService service(opt);
  const std::uint64_t handle = service.add_graph(g);

  nga::SpikingSsspOptions ref_opt;
  ref_opt.source = 1;
  const nga::SpikingSsspResult ref = nga::spiking_sssp(g, ref_opt);
  QueryRequest req;
  req.kind = QueryKind::kSssp;
  req.graph = handle;
  req.source = 1;
  req.ticket = 5;
  const QueryResult res = service.query(std::move(req));
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.dist, ref.dist);
  EXPECT_EQ(res.sim.spikes, ref.sim.spikes);
}

}  // namespace
}  // namespace sga::svc
