// Property tests for the event-driven simulator on randomized networks:
// determinism, spike-log monotonicity, accounting consistency, horizon
// monotonicity, and LIF-dynamics invariants that must hold regardless of
// topology or parameters.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.h"
#include "core/random.h"
#include "snn/network.h"
#include "snn/neuron.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::snn {
namespace {

/// A random mixed network: integrators and gates, excitatory and inhibitory
/// synapses, random delays, a few self-loops.
Network random_network(std::uint64_t seed, std::size_t n, std::size_t syn) {
  Rng rng(seed);
  Network net;
  for (std::size_t i = 0; i < n; ++i) {
    NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    p.v_reset = static_cast<Voltage>(rng.uniform_int(-1, 0));
    const int mode = static_cast<int>(rng.uniform_int(0, 2));
    p.tau = mode == 0 ? 0.0 : (mode == 1 ? 1.0 : 0.5);
    net.add_neuron(p);
  }
  for (std::size_t s = 0; s < syn; ++s) {
    const auto a = static_cast<NeuronId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<NeuronId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto w = static_cast<SynWeight>(rng.uniform_int(-2, 3));
    net.add_synapse(a, b, w, rng.uniform_int(1, 9));
  }
  return net;
}

struct RunOutput {
  SimStats stats;
  std::vector<std::pair<Time, NeuronId>> log;
  std::vector<Time> firsts;
};

RunOutput run_with(Simulator& sim, const Network& net, std::uint64_t seed,
                   Time horizon) {
  Rng rng(seed ^ 0x5EED);
  for (int i = 0; i < 5; ++i) {
    sim.inject_spike(
        static_cast<NeuronId>(rng.uniform_int(
            0, static_cast<std::int64_t>(net.num_neurons()) - 1)),
        rng.uniform_int(0, 3));
  }
  SimConfig cfg;
  cfg.max_time = horizon;
  cfg.record_spike_log = true;
  RunOutput out;
  out.stats = sim.run(cfg);
  out.log = sim.spike_log();
  out.firsts = sim.first_spikes();
  return out;
}

RunOutput run_once(const Network& net, std::uint64_t seed, Time horizon) {
  Simulator sim(net);
  return run_with(sim, net, seed, horizon);
}

void expect_same_run(const RunOutput& a, const RunOutput& b,
                     const char* what) {
  EXPECT_EQ(a.log, b.log) << what;
  EXPECT_EQ(a.firsts, b.firsts) << what;
  EXPECT_EQ(a.stats.spikes, b.stats.spikes) << what;
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries) << what;
  EXPECT_EQ(a.stats.event_times, b.stats.event_times) << what;
  EXPECT_EQ(a.stats.end_time, b.stats.end_time) << what;
  EXPECT_EQ(a.stats.execution_time, b.stats.execution_time) << what;
  EXPECT_EQ(a.stats.hit_terminal, b.stats.hit_terminal) << what;
  EXPECT_EQ(a.stats.hit_time_limit, b.stats.hit_time_limit) << what;
  // Queue-load counters are a property of the event stream, not of the
  // queue implementation, so they must survive reset()/reuse too.
  EXPECT_EQ(a.stats.peak_queue_events, b.stats.peak_queue_events) << what;
  EXPECT_EQ(a.stats.max_bucket_occupancy, b.stats.max_bucket_occupancy)
      << what;
}

class SimProperties : public ::testing::TestWithParam<int> {};

TEST_P(SimProperties, DeterministicAcrossRuns) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Network net = random_network(seed, 30, 120);
  const auto a = run_once(net, seed, 200);
  const auto b = run_once(net, seed, 200);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.stats.spikes, b.stats.spikes);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
}

TEST_P(SimProperties, SpikeLogIsTimeOrderedAndConsistent) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Network net = random_network(seed, 30, 120);
  const auto out = run_once(net, seed, 200);

  // Log times never decrease, never exceed the horizon.
  for (std::size_t i = 1; i < out.log.size(); ++i) {
    EXPECT_LE(out.log[i - 1].first, out.log[i].first);
  }
  if (!out.log.empty()) {
    EXPECT_LE(out.log.back().first, 200);
    // end_time can exceed the last spike: non-spiking deliveries also
    // advance the processed-event clock.
    EXPECT_LE(out.log.back().first, out.stats.end_time);
  }
  // Log size equals the spike counter; a neuron fires at most once per step.
  EXPECT_EQ(out.log.size(), out.stats.spikes);
  std::set<std::pair<Time, NeuronId>> unique(out.log.begin(), out.log.end());
  EXPECT_EQ(unique.size(), out.log.size());
  // first_spike matches the log's first occurrence.
  std::vector<Time> first_from_log(net.num_neurons(), kNever);
  for (const auto& [t, id] : out.log) {
    first_from_log[id] = std::min(first_from_log[id], t);
  }
  EXPECT_EQ(out.firsts, first_from_log);
}

TEST_P(SimProperties, LongerHorizonIsAPrefixExtension) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Network net = random_network(seed, 25, 100);
  const auto short_run = run_once(net, seed, 60);
  const auto long_run = run_once(net, seed, 150);
  // The short run's log is a prefix of the long run's.
  ASSERT_LE(short_run.log.size(), long_run.log.size());
  for (std::size_t i = 0; i < short_run.log.size(); ++i) {
    EXPECT_EQ(short_run.log[i], long_run.log[i]) << "index " << i;
  }
  // Anything beyond the prefix happened after the short horizon.
  for (std::size_t i = short_run.log.size(); i < long_run.log.size(); ++i) {
    EXPECT_GT(long_run.log[i].first, 60);
  }
}

TEST_P(SimProperties, ResetReusedSimulatorMatchesFresh) {
  // Two reset()+run() cycles on one simulator — with DIFFERENT injections
  // and horizons — must be indistinguishable from two fresh simulators.
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Network net = random_network(seed, 30, 120);
  const auto fresh_a = run_once(net, seed, 200);
  const auto fresh_b = run_once(net, seed + 101, 150);

  Simulator sim(net);
  const auto reused_a = run_with(sim, net, seed, 200);
  sim.reset();
  const auto reused_b = run_with(sim, net, seed + 101, 150);
  expect_same_run(fresh_a, reused_a, "first cycle");
  expect_same_run(fresh_b, reused_b, "second cycle after reset()");

  // And a third cycle replaying the first injections round-trips exactly.
  sim.reset();
  const auto reused_a2 = run_with(sim, net, seed, 200);
  expect_same_run(fresh_a, reused_a2, "third cycle after reset()");
}

TEST_P(SimProperties, MapQueueSimulatorSupportsResetToo) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Network net = random_network(seed, 25, 100);
  const auto fresh = run_once(net, seed, 120);
  Simulator sim(net, QueueKind::kMap);
  run_with(sim, net, seed + 7, 60);
  sim.reset();
  const auto reused = run_with(sim, net, seed, 120);
  expect_same_run(fresh, reused, "map-queue reset()");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperties, ::testing::Range(0, 10));

TEST(SimInvariants, QueueCountersAreReported) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 3);

  Simulator cal(net);
  cal.inject_spike(a, 0);
  const SimStats cs = cal.run();
  EXPECT_GE(cs.ring_buckets, 64u);  // minimum ring size
  EXPECT_EQ(cs.ring_buckets & (cs.ring_buckets - 1), 0u);  // power of two
  EXPECT_GE(cs.peak_queue_events, 1u);
  EXPECT_GE(cs.max_bucket_occupancy, 1u);
  EXPECT_EQ(cs.overflow_spills, 0u);  // delay 3 fits the 64-slot window

  Simulator map(net, QueueKind::kMap);
  EXPECT_EQ(map.queue_kind(), QueueKind::kMap);
  map.inject_spike(a, 0);
  const SimStats ms = map.run();
  EXPECT_EQ(ms.ring_buckets, 0u);  // no ring in the legacy queue
  EXPECT_EQ(ms.spikes, cs.spikes);
  EXPECT_EQ(ms.peak_queue_events, cs.peak_queue_events);
}

TEST(SimInvariants, FarFutureEventsSpillAndMigrate) {
  // An injection far beyond the ring window must spill to the overflow map,
  // then migrate back into the ring as the window slides — and the run must
  // still process it correctly.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 2);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  sim.inject_spike(a, 1'000'000);  // >> ring window (64 slots)
  const SimStats st = sim.run();
  EXPECT_GE(st.overflow_spills, 1u);
  EXPECT_EQ(sim.spike_count(a), 2u);
  EXPECT_EQ(sim.spike_count(b), 2u);
  EXPECT_EQ(st.end_time, 1'000'002);
}

TEST(SimInvariants, ExcitationOnlyNetworkSpikesMonotonically) {
  // With only positive weights and no decay, adding an extra input spike
  // can only add spikes, never remove them.
  Rng rng(0x99);
  Network net;
  for (int i = 0; i < 20; ++i) net.add_threshold_neuron(rng.uniform_int(1, 2));
  for (int s = 0; s < 60; ++s) {
    net.add_synapse(static_cast<NeuronId>(rng.uniform_int(0, 19)),
                    static_cast<NeuronId>(rng.uniform_int(0, 19)), 1,
                    rng.uniform_int(1, 5));
  }
  SimConfig cfg;
  cfg.max_time = 60;

  Simulator base(net);
  base.inject_spike(0, 0);
  const auto base_stats = base.run(cfg);

  Simulator more(net);
  more.inject_spike(0, 0);
  more.inject_spike(1, 0);
  const auto more_stats = more.run(cfg);

  EXPECT_GE(more_stats.spikes, base_stats.spikes);
  for (NeuronId v = 0; v < 20; ++v) {
    EXPECT_LE(more.first_spike(v), base.first_spike(v)) << "neuron " << v;
  }
}

TEST(SimInvariants, DecayNeverRaisesPotentialAboveDrive) {
  // A τ=0.5 neuron receiving one +4 pulse decays 4, 2, 1, 0.5...; probe via
  // zero-weight touches at successive times.
  Network net;
  const NeuronId src = net.add_threshold_neuron(1);
  const NeuronId probe = net.add_neuron(NeuronParams{0, 100, 0.5});
  const NeuronId poker = net.add_threshold_neuron(1);
  net.add_synapse(src, probe, 4, 1);
  net.add_synapse(poker, probe, 0.0, 5);
  Simulator sim(net);
  sim.inject_spike(src, 0);
  sim.inject_spike(poker, 0);
  sim.run();
  EXPECT_DOUBLE_EQ(sim.potential(probe), 0.25);  // 4 · (1/2)^4
}

TEST(SimInvariants, ResetBelowZeroRequiresMoreDrive) {
  // v_reset = -2, threshold 1: after one fire the neuron needs 3 units.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  const NeuronId sink = net.add_neuron(NeuronParams{-2, 1, 0.0});
  net.add_synapse(a, sink, 1, 1);   // first fire at t=1 (reset voltage was 0? no)
  net.add_synapse(b, sink, 2, 4);
  Simulator sim(net);
  // sink starts at v_reset = -2: a's single unit at t=1 leaves it at -1.
  sim.inject_spike(a, 0);
  sim.inject_spike(b, 0);
  sim.run();
  // -2 +1 = -1 at t=1 (no fire); +2 at t=4 → 1 ≥ 1 fires.
  EXPECT_EQ(sim.first_spike(sink), 4);
}

TEST(SimInvariants, WatchedNeuronsFilterTheLog) {
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  const NeuronId c = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 1);
  net.add_synapse(b, c, 1, 1);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  SimConfig cfg;
  cfg.record_spike_log = true;
  cfg.watched_neurons = {c};
  sim.run(cfg);
  ASSERT_EQ(sim.spike_log().size(), 1u);
  EXPECT_EQ(sim.spike_log()[0], (std::pair<Time, NeuronId>{2, c}));
  EXPECT_EQ(sim.spike_count(a), 1u);  // counters still track everything
}

TEST(SimInvariants, DecayFastPathsMatchGeneralFormula) {
  // decay_potential short-circuits dt == 0, τ = 0, and τ = 1 before paying
  // for std::pow; every fast path must be EXACTLY the general closed form
  // (pow(1, dt) = 1 and pow(0, dt>0) = 0 are exact in IEEE double, so the
  // equality is bitwise, not approximate).
  Rng rng(0x0DECA1);
  const double taus[] = {0.0, 1.0, 0.5, 0.25, 0.875};
  for (int trial = 0; trial < 2000; ++trial) {
    const double tau = taus[rng.uniform_int(0, 4)];
    const auto v = static_cast<Voltage>(rng.uniform_int(-8, 8)) * 0.5;
    const auto v_reset = static_cast<Voltage>(rng.uniform_int(-4, 4)) * 0.5;
    const Time dt = rng.uniform_int(0, 64);
    EXPECT_EQ(decay_potential(v, v_reset, tau, dt),
              decay_potential_general(v, v_reset, tau, dt))
        << "v " << v << " v_reset " << v_reset << " tau " << tau << " dt "
        << dt;
  }
}

TEST(SimInvariants, FiredInBinarySearchesLargeSpikeLogs) {
  // Regression for the fired_in() log consult: two self-oscillating neurons
  // interleave a multi-thousand-entry spike log (a fires at even times, b at
  // odd times), and every mid-run query lands on the "fired both before t0
  // and after t1" path that must binary-search the log instead of scanning
  // it from the front.
  Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, a, 1, 2);
  net.add_synapse(b, b, 1, 2);
  Simulator sim(net);
  sim.inject_spike(a, 0);
  sim.inject_spike(b, 1);
  SimConfig cfg;
  cfg.max_time = 6000;
  cfg.record_spike_log = true;
  const SimStats stats = sim.run(cfg);
  ASSERT_GE(stats.spikes, 6000u);
  ASSERT_GE(sim.spike_log().size(), 6000u);

  for (Time t = 500; t < 5500; ++t) {
    EXPECT_EQ(sim.fired_in(a, t, t), t % 2 == 0) << "t " << t;
    EXPECT_EQ(sim.fired_in(b, t, t), t % 2 == 1) << "t " << t;
  }
  // Width-1 windows cover one even and one odd time, so both always fired;
  // inverted windows are a precondition violation.
  EXPECT_TRUE(sim.fired_in(a, 1001, 1002));
  EXPECT_TRUE(sim.fired_in(b, 1001, 1002));
  EXPECT_THROW(sim.fired_in(a, 1002, 1001), InvalidArgument);
}

TEST(SimInvariants, SteadyStateRunsAreAllocationFreeAfterReset) {
  // The bucket-storage pool contract (ARCHITECTURE.md §1.6): every bucket
  // drained or reset donates its SoA vectors back to the pool, so a second
  // identical run never allocates bucket storage — pool_misses stays 0 and
  // every activation is a pool hit. The far-future injection drives the
  // spill map, whose nodes must participate in the same recycling.
  const Network net = random_network(0x600D, 30, 150);
  Simulator sim(net);
  auto inject = [&](Simulator& s) {
    Rng rng(0x600D ^ 0x5EED);
    for (int i = 0; i < 5; ++i) {
      s.inject_spike(
          static_cast<NeuronId>(rng.uniform_int(
              0, static_cast<std::int64_t>(net.num_neurons()) - 1)),
          rng.uniform_int(0, 3));
    }
    s.inject_spike(0, 450);
  };
  SimConfig cfg;
  cfg.max_time = 500;
  cfg.record_spike_log = true;

  inject(sim);
  const SimStats first = sim.run(cfg);
  ASSERT_GT(first.spikes, 0u);
  EXPECT_GT(first.fanout_segments, 0u);
  EXPECT_GT(first.bulk_appends, 0u);
  EXPECT_GT(first.pool_misses, 0u);  // cold start: pool is empty

  sim.reset();
  inject(sim);
  const SimStats second = sim.run(cfg);
  EXPECT_EQ(second.spikes, first.spikes);
  EXPECT_EQ(second.fanout_segments, first.fanout_segments);
  EXPECT_EQ(second.bulk_appends, first.bulk_appends);
  EXPECT_EQ(second.pool_misses, 0u) << "steady-state run allocated buckets";
  EXPECT_GT(second.pool_hits, 0u);
  EXPECT_EQ(second.pool_hits, first.pool_hits + first.pool_misses);
}

TEST(SimInvariants, MixedSizeReuseBoundsPoolStorage) {
  // Reuse-lifecycle regression (docs/SERVICE.md): before the high-watermark
  // trim, the bucket pool grew to the ALL-TIME peak concurrent bucket
  // demand and never shrank — one oversized request pinned its footprint
  // for the rest of a pooled worker's life. reset() now keeps only the
  // larger of the last two runs' peaks, so (a) a same-shaped rerun stays
  // allocation-free, (b) alternating big/small serve-many cycles stay
  // allocation-free too, and (c) once the big workload stops arriving the
  // pool shrinks to the small workload's demand within two resets.
  const Network net = random_network(0xB16, 40, 200);
  Simulator sim(net);

  // "Big" request: many injections spread over time -> many live buckets.
  auto inject_big = [&] {
    Rng rng(0xB16 ^ 0x5EED);
    for (int i = 0; i < 40; ++i) {
      sim.inject_spike(
          static_cast<NeuronId>(rng.uniform_int(
              0, static_cast<std::int64_t>(net.num_neurons()) - 1)),
          rng.uniform_int(0, 60));
    }
  };
  // "Small" request: one source, short horizon -> few live buckets.
  SimConfig small_cfg;
  small_cfg.max_time = 8;
  // Recurrent random networks need a horizon; the big one still drives far
  // more concurrent buckets than the small one.
  SimConfig big_cfg;
  big_cfg.max_time = 150;

  inject_big();
  sim.run(big_cfg);
  sim.reset();
  const std::size_t big_resident = sim.pool_resident_buckets();
  ASSERT_GT(big_resident, 0u);

  // Mixed steady state: alternating big/small requests never allocate
  // after their own first occurrence (the pool keeps the bigger of the
  // last two peaks, which covers both shapes).
  for (int cycle = 0; cycle < 3; ++cycle) {
    sim.inject_spike(0, 0);
    const SimStats small = sim.run(small_cfg);
    sim.reset();
    EXPECT_EQ(small.pool_misses, 0u) << "cycle " << cycle;
    inject_big();
    const SimStats big = sim.run(big_cfg);
    sim.reset();
    EXPECT_EQ(big.pool_misses, 0u) << "cycle " << cycle;
    EXPECT_LE(sim.pool_resident_buckets(), big_resident) << "cycle " << cycle;
  }

  // What the small workload needs on its own: run it on a fresh simulator
  // (same network, same deterministic event stream).
  Simulator fresh(net);
  fresh.inject_spike(0, 0);
  fresh.run(small_cfg);
  fresh.reset();
  const std::size_t small_resident = fresh.pool_resident_buckets();
  ASSERT_LT(small_resident, big_resident);

  // Big workload stops: two small-only cycles later the resident storage
  // has dropped to the small workload's own demand (the big peak has aged
  // out of the two-run window).
  for (int i = 0; i < 2; ++i) {
    sim.inject_spike(0, 0);
    sim.run(small_cfg);
    sim.reset();
  }
  EXPECT_EQ(sim.pool_resident_buckets(), small_resident)
      << "pool retained the big workload's footprint after it stopped";

  // And the small steady state is still allocation-free after the shrink.
  sim.inject_spike(0, 0);
  const SimStats after = sim.run(small_cfg);
  EXPECT_EQ(after.pool_misses, 0u);
}

}  // namespace
}  // namespace sga::snn
