// Scale and robustness: the repro premise is that event-driven SNN
// simulation of these algorithms is laptop-scale — prove it with larger
// instances inside the normal test budget — and that the simulator and
// algorithms stay exact under adversarial parameters (huge delays, big
// weights, deep recurrence, degenerate horizons).
#include <gtest/gtest.h>

#include "core/random.h"
#include "core/timer.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"
#include "snn/network.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga {
namespace {

TEST(Scale, SpikingSsspOnFiftyThousandVertices) {
  Rng rng(0x5CA1E);
  const Graph g = make_random_graph(50000, 400000, {1, 100}, rng);
  WallTimer timer;
  nga::SpikingSsspOptions opt;
  opt.source = 0;
  opt.record_parents = false;
  const auto run = nga::spiking_sssp(g, opt);
  const double secs = timer.seconds();
  EXPECT_EQ(run.sim.spikes, 50000u);  // connected: every relay fires once
  // Spot-check against Dijkstra on a sample of vertices.
  const auto ref = dijkstra(g, 0);
  for (VertexId v = 0; v < 50000; v += 4999) {
    EXPECT_EQ(run.dist[v], ref.dist[v]) << "vertex " << v;
  }
  // Laptop-scale: well under the CI budget even on one core.
  EXPECT_LT(secs, 20.0);
}

TEST(Scale, DeepRecurrentChainOfSpikes) {
  // A ring oscillator pushed for 10^5 steps: event count stays linear and
  // timing exact.
  snn::Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 3);
  net.add_synapse(b, a, 1, 4);
  snn::Simulator sim(net);
  sim.inject_spike(a, 0);
  snn::SimConfig cfg;
  cfg.max_time = 100000;
  const auto st = sim.run(cfg);
  // Period 7: a fires at 0, 7, 14, ...; b at 3, 10, ...
  EXPECT_EQ(sim.spike_count(a), 100000u / 7 + 1);
  EXPECT_EQ(st.spikes, sim.spike_count(a) + sim.spike_count(b));
}

TEST(Robustness, HugeDelaysDoNotOverflow) {
  snn::Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  const Delay huge = 1LL << 40;
  net.add_synapse(a, b, 1, huge);
  snn::Simulator sim(net);
  sim.inject_spike(a, 0);
  const auto st = sim.run();
  EXPECT_EQ(sim.first_spike(b), huge);
  EXPECT_EQ(st.event_times, 2u);
}

TEST(Robustness, LargeWeightsStayExact) {
  // Integer-valued doubles are exact below 2^53: a 2^50 weight against a
  // 2^50 threshold must fire, 2^50 − 1 must not.
  snn::Network net;
  const NeuronId src = net.add_threshold_neuron(1);
  const Voltage big = static_cast<Voltage>(1ULL << 50);
  const NeuronId exact = net.add_neuron(snn::NeuronParams{0, big, 0.0});
  const NeuronId below = net.add_neuron(snn::NeuronParams{0, big, 0.0});
  net.add_synapse(src, exact, static_cast<SynWeight>(big), 1);
  net.add_synapse(src, below, static_cast<SynWeight>(big) - 1, 1);
  snn::Simulator sim(net);
  sim.inject_spike(src, 0);
  sim.run();
  EXPECT_EQ(sim.first_spike(exact), 1);
  EXPECT_EQ(sim.first_spike(below), kNever);
}

TEST(Robustness, ZeroHorizonProcessesOnlyTimeZero) {
  snn::Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 1);
  snn::Simulator sim(net);
  sim.inject_spike(a, 0);
  snn::SimConfig cfg;
  cfg.max_time = 0;
  const auto st = sim.run(cfg);
  EXPECT_EQ(sim.first_spike(a), 0);
  EXPECT_EQ(sim.first_spike(b), kNever);
  EXPECT_EQ(st.spikes, 1u);
}

TEST(Robustness, MassiveFanInSingleStep) {
  // 10^4 simultaneous arrivals at one neuron: one aggregation, one spike.
  snn::Network net;
  const NeuronId sink = net.add_neuron(
      snn::NeuronParams{0, static_cast<Voltage>(10000), 0.0});
  std::vector<NeuronId> sources;
  for (int i = 0; i < 10000; ++i) {
    const NeuronId s = net.add_threshold_neuron(1);
    net.add_synapse(s, sink, 1, 1);
    sources.push_back(s);
  }
  snn::Simulator sim(net);
  for (const NeuronId s : sources) sim.inject_spike(s, 0);
  const auto st = sim.run();
  EXPECT_EQ(sim.first_spike(sink), 1);
  EXPECT_EQ(st.deliveries, 10000u);
  EXPECT_EQ(st.event_times, 2u);
}

TEST(Robustness, InhibitionStormKeepsPotentialFinite) {
  // Repeated strong inhibition then a late excitation: the potential is
  // whatever the dynamics say, not clamped or wrapped.
  snn::Network net;
  const NeuronId inhib = net.add_threshold_neuron(1);
  const NeuronId target = net.add_neuron(snn::NeuronParams{0, 1, 0.0});
  net.add_synapse(inhib, inhib, 1, 1);        // keeps firing
  net.add_synapse(inhib, target, -1000, 1);   // heavy inhibition each step
  snn::Simulator sim(net);
  sim.inject_spike(inhib, 0);
  snn::SimConfig cfg;
  cfg.max_time = 100;
  sim.run(cfg);
  EXPECT_DOUBLE_EQ(sim.potential(target), -1000.0 * 100.0);
  EXPECT_EQ(sim.first_spike(target), kNever);
}

}  // namespace
}  // namespace sga
