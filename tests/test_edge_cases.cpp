// Edge-case and failure-injection tests across the public API: degenerate
// graphs, parameter-limit rejections, and the documented precondition
// throws — the behaviours a downstream user hits first when misusing the
// library.
#include <gtest/gtest.h>

#include "core/random.h"
#include "crossbar/embedding.h"
#include "graph/generators.h"
#include "nga/approx.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "nga/sssp_event.h"

namespace sga {
namespace {

TEST(EdgeCases, SingleVertexGraphSssp) {
  Graph g(1);
  nga::SpikingSsspOptions opt;
  opt.source = 0;
  const auto r = nga::spiking_sssp(g, opt);
  EXPECT_EQ(r.dist[0], 0);
  EXPECT_EQ(r.execution_time, 0);
  EXPECT_EQ(r.sim.spikes, 1u);  // just the injected source spike
}

TEST(EdgeCases, SourceEqualsTargetTerminatesImmediately) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  g.add_edge(1, 2, 2);
  nga::SpikingSsspOptions opt;
  opt.source = 0;
  opt.target = 0;
  const auto r = nga::spiking_sssp(g, opt);
  EXPECT_TRUE(r.sim.hit_terminal);
  EXPECT_EQ(r.execution_time, 0);
}

TEST(EdgeCases, KHopAlgorithmsRejectEdgelessGraphs) {
  Graph g(3);
  nga::KHopTtlOptions topt;
  topt.source = 0;
  topt.k = 2;
  EXPECT_THROW(nga::khop_sssp_ttl(g, topt), InvalidArgument);
  nga::KHopPolyOptions popt;
  popt.source = 0;
  popt.k = 2;
  EXPECT_THROW(nga::khop_sssp_poly(g, popt), InvalidArgument);
}

TEST(EdgeCases, KHopRejectsZeroK) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  nga::KHopTtlOptions topt;
  topt.source = 0;
  topt.k = 0;
  EXPECT_THROW(nga::khop_sssp_ttl(g, topt), InvalidArgument);
  nga::KHopPolyOptions popt;
  popt.source = 0;
  popt.k = 0;
  EXPECT_THROW(nga::khop_sssp_poly(g, popt), InvalidArgument);
}

TEST(EdgeCases, KHopPolyRejectsOverwideMessages) {
  // k·U beyond the 40-bit message cap must throw, not overflow.
  Graph g(2);
  g.add_edge(0, 1, kInfiniteDistance / 4);
  nga::KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 8;
  EXPECT_THROW(nga::khop_sssp_poly(g, opt), InvalidArgument);
}

TEST(EdgeCases, KHopOnTwoVertexGraph) {
  Graph g(2);
  g.add_edge(0, 1, 3);
  nga::KHopTtlOptions topt;
  topt.source = 0;
  topt.k = 1;
  EXPECT_EQ(nga::khop_sssp_ttl(g, topt).dist[1], 3);
  nga::KHopPolyOptions popt;
  popt.source = 0;
  popt.k = 1;
  EXPECT_EQ(nga::khop_sssp_poly(g, popt).dist[1], 3);
}

TEST(EdgeCases, KHopSourceWithNoOutEdges) {
  // The source only receives: every vertex (but the source) unreachable.
  Graph g(3);
  g.add_edge(1, 0, 2);
  g.add_edge(1, 2, 2);
  nga::KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 2;
  const auto r = nga::khop_sssp_poly(g, opt);
  EXPECT_EQ(r.dist[0], 0);
  EXPECT_FALSE(r.reachable(1));
  EXPECT_FALSE(r.reachable(2));
}

TEST(EdgeCases, ApproxRejectsDegenerateInputs) {
  Graph tiny(1);
  nga::ApproxKHopOptions opt;
  opt.source = 0;
  opt.k = 1;
  EXPECT_THROW(nga::approx_khop_sssp(tiny, opt), InvalidArgument);
  Graph two(2);
  two.add_edge(0, 1, 1);
  opt.k = 0;
  EXPECT_THROW(nga::approx_khop_sssp(two, opt), InvalidArgument);
}

TEST(EdgeCases, ApproxOnTwoVertexGraphIsExactEnough) {
  Graph g(2);
  g.add_edge(0, 1, 10);
  nga::ApproxKHopOptions opt;
  opt.source = 0;
  opt.k = 1;
  const auto r = nga::approx_khop_sssp(g, opt);
  ASSERT_TRUE(r.reachable(1));
  EXPECT_GE(r.dist[1], 10.0 - 1e-9);
  EXPECT_LE(r.dist[1], (1.0 + r.epsilon) * 10.0 + 1e-9);
}

TEST(EdgeCases, CrossbarOrderOneHasNoCrossSlots) {
  crossbar::CrossbarMachine m(1);
  EXPECT_EQ(m.topology().num_cross_slots(), 0u);
  EXPECT_EQ(m.topology().num_vertices(), 2u);
  const Graph host = m.snapshot();
  EXPECT_EQ(host.num_edges(), 1u);  // just the diagonal edge
}

TEST(EdgeCases, EmbeddingSingleEdgeSmallestGraph) {
  Graph g(2);
  g.add_edge(0, 1, 1);
  const auto r = crossbar::spiking_sssp_on_crossbar(g, 0);
  EXPECT_EQ(r.dist[1], 1);
  EXPECT_EQ(r.scale, 4);  // ceil(2·2 / 1)
}

TEST(EdgeCases, ParallelEdgesInKHop) {
  Graph g(2);
  g.add_edge(0, 1, 9);
  g.add_edge(0, 1, 4);
  nga::KHopPolyOptions opt;
  opt.source = 0;
  opt.k = 1;
  EXPECT_EQ(nga::khop_sssp_poly(g, opt).dist[1], 4);
  nga::KHopTtlOptions topt;
  topt.source = 0;
  topt.k = 1;
  EXPECT_EQ(nga::khop_sssp_ttl(g, topt).dist[1], 4);
}

TEST(EdgeCases, LargeKOnShortGraphIsHarmless) {
  // k far beyond the diameter: same answer as plain SSSP.
  Rng rng(0xEC);
  const Graph g = make_path_graph(5, {2, 2}, rng);
  nga::KHopTtlOptions opt;
  opt.source = 0;
  opt.k = 64;
  const auto r = nga::khop_sssp_ttl(g, opt);
  EXPECT_EQ(r.dist[4], 8);
  EXPECT_EQ(r.lambda, 6);  // bits_for(63)
}

}  // namespace
}  // namespace sga
