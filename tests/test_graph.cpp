// Tests for the graph substrate: structure, CSR adjacency, generators,
// serialization, reference Dijkstra / k-hop Bellman–Ford, and properties.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/properties.h"

namespace sga {
namespace {

Graph diamond() {
  // 0 -> 1 -> 3 (1 + 1 = 2), 0 -> 2 -> 3 (5 + 5 = 10), 0 -> 3 direct (4).
  Graph g(4);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 3, 1);
  g.add_edge(0, 2, 5);
  g.add_edge(2, 3, 5);
  g.add_edge(0, 3, 4);
  return g;
}

TEST(Graph, BasicStructure) {
  const Graph g = diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.out_degree(0), 3u);
  EXPECT_EQ(g.in_degree(3), 3u);
  EXPECT_EQ(g.max_edge_length(), 5);
  EXPECT_EQ(g.min_edge_length(), 1);
  EXPECT_EQ(g.max_degree(), 3u);  // vertex 0 (out 3) or vertex 3 (in 3)
}

TEST(Graph, RejectsBadEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 1, 0), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 1, -3), InvalidArgument);
}

TEST(Graph, CsrSurvivesMutation) {
  Graph g(3);
  g.add_edge(0, 1, 1);
  EXPECT_EQ(g.out_degree(0), 1u);  // builds CSR
  g.add_edge(0, 2, 1);             // invalidates
  EXPECT_EQ(g.out_degree(0), 2u);  // rebuilt
}

TEST(Graph, ScaleLengths) {
  Graph g = diamond();
  g.scale_lengths(7);
  EXPECT_EQ(g.min_edge_length(), 7);
  EXPECT_EQ(g.max_edge_length(), 35);
  EXPECT_THROW(g.scale_lengths(0), InvalidArgument);
}

TEST(Graph, Reversed) {
  const Graph g = diamond();
  const Graph r = g.reversed();
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_EQ(r.out_degree(3), 3u);
  EXPECT_EQ(r.in_degree(3), 0u);
}

TEST(Dijkstra, DiamondDistances) {
  const auto res = dijkstra(diamond(), 0);
  EXPECT_EQ(res.dist[0], 0);
  EXPECT_EQ(res.dist[1], 1);
  EXPECT_EQ(res.dist[2], 5);
  EXPECT_EQ(res.dist[3], 2);
  EXPECT_EQ(res.parent[3], 1u);
  EXPECT_EQ(shortest_path_hops(res, 3), 2u);
  const auto path = extract_path(res, 3);
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1, 3}));
}

TEST(Dijkstra, UnreachableVertex) {
  Graph g(3);
  g.add_edge(0, 1, 2);
  const auto res = dijkstra(g, 0);
  EXPECT_FALSE(res.reachable(2));
  EXPECT_THROW(extract_path(res, 2), InvalidArgument);
}

TEST(Dijkstra, CountsOperations) {
  const auto res = dijkstra(diamond(), 0);
  EXPECT_EQ(res.ops.edge_relaxations, 5u);  // every edge scanned once
  EXPECT_GT(res.ops.heap_ops, 0u);
}

TEST(BellmanFordKHop, HopLimitChangesAnswer) {
  const Graph g = diamond();
  // 1 hop: only the direct 0->3 edge (length 4).
  EXPECT_EQ(bellman_ford_khop(g, 0, 1).dist[3], 4);
  // 2 hops: 0->1->3 (length 2).
  EXPECT_EQ(bellman_ford_khop(g, 0, 2).dist[3], 2);
  // 0 hops: unreachable.
  EXPECT_FALSE(bellman_ford_khop(g, 0, 0).reachable(3));
}

TEST(BellmanFordKHop, MatchesDijkstraWithEnoughHops) {
  Rng rng(5);
  const Graph g = make_random_graph(40, 200, {1, 9}, rng);
  const auto bf = bellman_ford_khop(g, 0, 39);
  const auto dj = dijkstra(g, 0);
  EXPECT_EQ(bf.dist, dj.dist);
}

TEST(BellmanFordKHop, RoundsTableIsMonotone) {
  Rng rng(6);
  const Graph g = make_random_graph(20, 60, {1, 5}, rng);
  const auto rounds = bellman_ford_khop_rounds(g, 0, 10);
  ASSERT_EQ(rounds.size(), 11u);
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    for (std::size_t v = 0; v < 20; ++v) {
      EXPECT_LE(rounds[i][v], rounds[i - 1][v]);
    }
  }
  EXPECT_EQ(rounds[10], bellman_ford_khop(g, 0, 10).dist);
}

TEST(Generators, RandomGraphShape) {
  Rng rng(1);
  const Graph g = make_random_graph(30, 120, {1, 10}, rng);
  EXPECT_EQ(g.num_vertices(), 30u);
  EXPECT_EQ(g.num_edges(), 120u);
  EXPECT_TRUE(all_reachable(g, 0));
  EXPECT_GE(g.min_edge_length(), 1);
  EXPECT_LE(g.max_edge_length(), 10);
}

TEST(Generators, RandomGraphHasNoDuplicateEdges) {
  Rng rng(2);
  const Graph g = make_random_graph(10, 80, {1, 1}, rng);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const auto& e : g.edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_TRUE(seen.emplace(e.from, e.to).second);
  }
}

TEST(Generators, GridGraphShape) {
  Rng rng(3);
  const Graph g = make_grid_graph(4, 5, {1, 1}, rng);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 40u);  // torus: right + down per vertex
  EXPECT_TRUE(all_reachable(g, 0));
}

TEST(Generators, PathCycleComplete) {
  Rng rng(4);
  const Graph p = make_path_graph(6, {2, 2}, rng);
  EXPECT_EQ(p.num_edges(), 5u);
  EXPECT_EQ(dijkstra(p, 0).dist[5], 10);

  const Graph c = make_cycle_graph(6, {1, 1}, rng);
  EXPECT_EQ(c.num_edges(), 6u);
  EXPECT_EQ(dijkstra(c, 0).dist[5], 5);

  const Graph k = make_complete_graph(5, {1, 3}, rng);
  EXPECT_EQ(k.num_edges(), 20u);
}

TEST(Generators, LayeredDagHopsMatchLayers) {
  Rng rng(9);
  const Graph g = make_layered_dag(4, 3, 2, {1, 1}, rng);
  const auto hops = bfs_hops(g, 0);
  for (std::size_t layer = 0; layer < 4; ++layer) {
    for (std::size_t i = 0; i < 3; ++i) {
      const auto v = static_cast<VertexId>(1 + layer * 3 + i);
      if (hops[v] != std::numeric_limits<std::uint32_t>::max()) {
        EXPECT_EQ(hops[v], layer + 1);
      }
    }
  }
}

TEST(Generators, PreferentialAttachmentReachable) {
  Rng rng(10);
  const Graph g = make_preferential_attachment(50, 2, {1, 4}, rng);
  EXPECT_EQ(g.num_vertices(), 50u);
  EXPECT_TRUE(all_reachable(g, 0));
}

TEST(Generators, GeometricGraphIsConnectedAndMetricish) {
  Rng rng(11);
  const Graph g = make_geometric_graph(40, 0.25, 100, rng);
  EXPECT_EQ(g.num_vertices(), 40u);
  EXPECT_TRUE(all_reachable(g, 0));
  // Lengths are ceil(scale · euclidean) on the unit square: bounded by the
  // diagonal, and neighbours within the radius are short.
  EXPECT_LE(g.max_edge_length(), static_cast<Weight>(100.0 * 1.5));
  EXPECT_GE(g.min_edge_length(), 1);
  // Every (u,v) appears with its reverse, at equal length.
  std::map<std::pair<VertexId, VertexId>, Weight> len;
  for (const auto& e : g.edges()) len[{e.from, e.to}] = e.length;
  for (const auto& e : g.edges()) {
    const auto it = len.find({e.to, e.from});
    ASSERT_NE(it, len.end());
    EXPECT_EQ(it->second, e.length);
  }
}

TEST(Generators, GeometricGraphDensityGrowsWithRadius) {
  Rng a(12), b(12);
  const Graph sparse = make_geometric_graph(60, 0.1, 10, a);
  const Graph dense = make_geometric_graph(60, 0.4, 10, b);
  EXPECT_GT(dense.num_edges(), sparse.num_edges());
}

TEST(Io, DimacsRoundTrip) {
  const Graph g = diamond();
  std::stringstream ss;
  write_dimacs(ss, g, "diamond test");
  const Graph h = read_dimacs(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(h.edge(e), g.edge(e));
}

TEST(Io, DimacsRejectsMalformed) {
  std::stringstream no_header("a 1 2 3\n");
  EXPECT_THROW(read_dimacs(no_header), InvalidArgument);
  std::stringstream bad_count("p sp 2 2\na 1 2 3\n");
  EXPECT_THROW(read_dimacs(bad_count), InvalidArgument);
  std::stringstream out_of_range("p sp 2 1\na 1 9 3\n");
  EXPECT_THROW(read_dimacs(out_of_range), InvalidArgument);
}

TEST(Io, EdgeListRoundTrip) {
  const Graph g = diamond();
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(h.edge(e), g.edge(e));
}

TEST(Properties, PathValidation) {
  const Graph g = diamond();
  EXPECT_EQ(path_length(g, {0, 1, 3}), 2);
  EXPECT_THROW(path_length(g, {0, 3, 1}), InvalidArgument);
  EXPECT_TRUE(is_shortest_path_witness(g, {0, 1, 3}, 0, 3, 2));
  EXPECT_FALSE(is_shortest_path_witness(g, {0, 2, 3}, 0, 3, 2));
}

TEST(Properties, BfsHops) {
  const Graph g = diamond();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[3], 1u);  // direct edge
}

}  // namespace
}  // namespace sga
