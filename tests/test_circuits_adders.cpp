// Property tests for the three adder circuits (Figure 4 and Section 5 "Sum
// Circuits"), the add-constant / decrement circuits of Sections 4.1–4.2,
// and bus gating.
#include <gtest/gtest.h>

#include "circuits/adders.h"
#include "circuits/arith.h"
#include "circuits/harness.h"
#include "core/bitops.h"
#include "core/random.h"
#include "snn/probe.h"
#include "snn/simulator.h"

namespace sga::circuits {
namespace {

using snn::Network;

struct AdderParam {
  AdderKind kind;
  int lambda;
};

std::string adder_name(const ::testing::TestParamInfo<AdderParam>& info) {
  std::string s;
  switch (info.param.kind) {
    case AdderKind::kRipple: s = "Ripple"; break;
    case AdderKind::kRamosBohorquez: s = "Ramos"; break;
    case AdderKind::kLookahead: s = "Lookahead"; break;
  }
  return s + "_l" + std::to_string(info.param.lambda);
}

class AdderSweep : public ::testing::TestWithParam<AdderParam> {};

TEST_P(AdderSweep, MatchesIntegerAdditionOnRandomInputs) {
  const auto& p = GetParam();
  Rng rng(0xADD ^ static_cast<std::uint64_t>(p.lambda * 1315423911ULL) ^
          static_cast<std::uint64_t>(p.kind));
  for (int trial = 0; trial < 16; ++trial) {
    Network net;
    CircuitBuilder cb(net);
    const AdderCircuit c = build_adder(cb, p.lambda, p.kind);
    const auto top = static_cast<std::int64_t>(mask_bits(p.lambda));
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, top));
    const auto b = static_cast<std::uint64_t>(rng.uniform_int(0, top));
    bool carry = false;
    const std::uint64_t sum = eval_adder_circuit(net, c, a, b, &carry);
    EXPECT_EQ(sum, (a + b) & mask_bits(p.lambda)) << a << " + " << b;
    EXPECT_EQ(carry, ((a + b) >> p.lambda) & 1ULL) << a << " + " << b;
  }
}

TEST_P(AdderSweep, ExtremeOperands) {
  const auto& p = GetParam();
  const std::uint64_t top = mask_bits(p.lambda);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> cases = {
      {0, 0}, {0, top}, {top, 0}, {top, top}, {1, top}, {top / 2 + 1, top / 2}};
  for (const auto& [a, b] : cases) {
    Network net;
    CircuitBuilder cb(net);
    const AdderCircuit c = build_adder(cb, p.lambda, p.kind);
    bool carry = false;
    EXPECT_EQ(eval_adder_circuit(net, c, a, b, &carry), (a + b) & top)
        << a << " + " << b;
    EXPECT_EQ(carry, ((a + b) >> p.lambda) & 1ULL);
  }
}

TEST_P(AdderSweep, PipelinedAdditionsAreIndependent) {
  const auto& p = GetParam();
  Rng rng(0xF00D + static_cast<std::uint64_t>(p.lambda));
  Network net;
  CircuitBuilder cb(net);
  const AdderCircuit c = build_adder(cb, p.lambda, p.kind);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rounds;
  const auto top = static_cast<std::int64_t>(mask_bits(p.lambda));
  for (int r = 0; r < 6; ++r) {
    rounds.emplace_back(static_cast<std::uint64_t>(rng.uniform_int(0, top)),
                        static_cast<std::uint64_t>(rng.uniform_int(0, top)));
  }
  const auto results = eval_adder_circuit_pipelined(net, c, rounds);
  ASSERT_EQ(results.size(), rounds.size());
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(results[r],
              (rounds[r].first + rounds[r].second) & mask_bits(p.lambda))
        << "round " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AdderSweep,
    ::testing::Values(AdderParam{AdderKind::kRipple, 1},
                      AdderParam{AdderKind::kRipple, 4},
                      AdderParam{AdderKind::kRipple, 8},
                      AdderParam{AdderKind::kRipple, 16},
                      AdderParam{AdderKind::kRamosBohorquez, 1},
                      AdderParam{AdderKind::kRamosBohorquez, 4},
                      AdderParam{AdderKind::kRamosBohorquez, 8},
                      AdderParam{AdderKind::kRamosBohorquez, 16},
                      AdderParam{AdderKind::kLookahead, 1},
                      AdderParam{AdderKind::kLookahead, 4},
                      AdderParam{AdderKind::kLookahead, 8},
                      AdderParam{AdderKind::kLookahead, 16}),
    adder_name);

TEST(Adders, ExhaustiveFourBitRipple) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      Network net;
      CircuitBuilder cb(net);
      const AdderCircuit c = build_ripple_adder(cb, 4);
      EXPECT_EQ(eval_adder_circuit(net, c, a, b), (a + b) & 0xF)
          << a << " + " << b;
    }
  }
}

TEST(Adders, ExhaustiveFourBitRamos) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      Network net;
      CircuitBuilder cb(net);
      const AdderCircuit c = build_ramos_adder(cb, 4);
      EXPECT_EQ(eval_adder_circuit(net, c, a, b), (a + b) & 0xF)
          << a << " + " << b;
    }
  }
}

TEST(Adders, DepthAndSizeProfiles) {
  // The Figure-4 trade-off: Ramos–Bohórquez is depth 2 with O(λ) neurons and
  // exponential weights; ripple is O(λ) depth with unit-ish weights; the
  // lookahead variant is constant depth with O(λ²) neurons and small weights.
  Network n1, n2, n3;
  CircuitBuilder c1(n1), c2(n2), c3(n3);
  const AdderCircuit ripple = build_ripple_adder(c1, 12);
  const AdderCircuit ramos = build_ramos_adder(c2, 12);
  const AdderCircuit look = build_lookahead_adder(c3, 12);

  EXPECT_EQ(ramos.depth, 2);
  EXPECT_EQ(look.depth, 4);
  EXPECT_EQ(ripple.depth, 2 * 12 + 2);

  EXPECT_DOUBLE_EQ(ramos.stats.max_abs_weight, 2048.0);  // weights up to 2^{λ-1}
  EXPECT_LE(ripple.stats.max_abs_weight, 2.0);
  EXPECT_LE(look.stats.max_abs_weight, 2.0);

  // Sizes: ripple/ramos linear in λ, lookahead quadratic.
  EXPECT_LT(ramos.stats.neurons, 4 * 12u + 30u);
  EXPECT_GT(look.stats.neurons, 12u * 12u / 2u);
}

class AddConstSweep : public ::testing::TestWithParam<int> {};

TEST_P(AddConstSweep, AddsHardwiredConstantsModuloWidth) {
  const int lambda = GetParam();
  Rng rng(0xC057 + static_cast<std::uint64_t>(lambda));
  const auto top = static_cast<std::int64_t>(mask_bits(lambda));
  for (int trial = 0; trial < 10; ++trial) {
    const auto k = static_cast<std::uint64_t>(rng.uniform_int(0, top));
    const auto a = static_cast<std::uint64_t>(rng.uniform_int(0, top));
    Network net;
    CircuitBuilder cb(net);
    const AddConstCircuit c = build_add_constant(cb, lambda, k);
    EXPECT_EQ(eval_add_const_circuit(net, c, a), (a + k) & mask_bits(lambda))
        << a << " + " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AddConstSweep, ::testing::Values(1, 3, 6, 10));

TEST(Decrement, SubtractsOneExactly) {
  // The Section 4.1 TTL decrement: x - 1 as x + (2^λ - 1) mod 2^λ.
  for (std::uint64_t x = 1; x < 32; ++x) {
    Network net;
    CircuitBuilder cb(net);
    const AddConstCircuit c = build_decrement(cb, 5);
    EXPECT_EQ(eval_add_const_circuit(net, c, x), x - 1);
  }
}

TEST(Decrement, ZeroWrapsAround) {
  Network net;
  CircuitBuilder cb(net);
  const AddConstCircuit c = build_decrement(cb, 5);
  EXPECT_EQ(eval_add_const_circuit(net, c, 0), 31u);  // callers gate on x ≥ 1
}

TEST(GateBus, MasksBusWithControl) {
  Network net;
  CircuitBuilder cb(net);
  const auto bus = cb.make_input_bus(4);
  const NeuronId control = cb.make_input();
  const auto gated = gate_bus(cb, bus, control, 1);

  {
    snn::Simulator sim(net);
    snn::inject_binary(sim, bus, 0b1011, 0);
    sim.inject_spike(control, 0);
    sim.run();
    EXPECT_EQ(snn::decode_binary_at(sim, gated, 1), 0b1011u);
  }
  {
    snn::Simulator sim(net);
    snn::inject_binary(sim, bus, 0b1011, 0);  // control silent
    sim.run();
    EXPECT_EQ(snn::decode_binary_at(sim, gated, 1), 0u);
  }
}

}  // namespace
}  // namespace sga::circuits
