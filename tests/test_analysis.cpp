// Tests for the analysis layer: Table-1 predicates and rows, power-law
// shape checks, and the Table-3 platform database / energy model.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/advantage.h"
#include "analysis/calibrate.h"
#include "analysis/fit.h"
#include "analysis/platforms.h"
#include "core/bitops.h"
#include "core/error.h"
#include "core/random.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"

namespace sga::analysis {
namespace {

ProblemParams favourable() {
  // A regime Table 1 calls neuromorphic-friendly: dense-ish graph, small U,
  // few registers, short paths, moderate k.
  ProblemParams p;
  p.n = 1024;
  p.m = 32768;
  p.k = 64;
  p.U = 8;
  p.L = 64;
  p.alpha = 8;
  p.c = 2;
  return p;
}

TEST(Advantage, FavourableRegimeFlagsNeuromorphic) {
  const auto p = favourable();
  EXPECT_TRUE(better_khop_poly_nodm(p));   // log(nU) = o(k): 13 < 64
  EXPECT_TRUE(better_khop_pseudo_nodm(p));
  EXPECT_TRUE(better_sssp_pseudo_dm(p));
  EXPECT_TRUE(better_khop_pseudo_dm(p));
  EXPECT_TRUE(better_khop_poly_dm(p));
  EXPECT_TRUE(better_sssp_poly_dm(p));
  EXPECT_FALSE(better_sssp_poly_nodm(p));  // the table's "never"
}

TEST(Advantage, AdverseRegimeFlagsConventional) {
  ProblemParams p;
  p.n = 1024;
  p.m = 2048;  // sparse
  p.k = 2;     // tiny hop budget
  p.U = 1 << 20;  // huge lengths
  p.L = 1 << 22;  // long paths
  p.alpha = 900;
  p.c = 1024;  // many registers
  EXPECT_FALSE(better_khop_poly_nodm(p));  // log(nU) = 30 > k = 2
  EXPECT_FALSE(better_sssp_pseudo_nodm(p));
  EXPECT_FALSE(better_sssp_pseudo_dm(p));
}

TEST(Advantage, Table1HasAllEightRows) {
  const auto rows = table1_rows(favourable());
  ASSERT_EQ(rows.size(), 8u);
  int with_dm = 0;
  for (const auto& r : rows) {
    EXPECT_GT(r.conventional, 0.0);
    EXPECT_GT(r.neuromorphic, 0.0);
    with_dm += r.with_data_movement;
  }
  EXPECT_EQ(with_dm, 4);
}

TEST(Advantage, HeadlineFactors) {
  const auto p = favourable();
  // Ω(k/log n) ignoring movement; Ω(√m/log n) with movement.
  EXPECT_DOUBLE_EQ(headline_advantage_nodm(p), 64.0 / 10.0);
  EXPECT_NEAR(headline_advantage_dm(p), std::sqrt(32768.0) / 10.0, 1e-9);
}

TEST(Advantage, KHopDataMovementRatioGrowsWithM) {
  // The top-half k-hop row: lower bound Ω(km^{3/2}) vs neuromorphic
  // O((nk+m)log(nU)) — the ratio must grow polynomially in m.
  ProblemParams p = favourable();
  const auto rows_small = table1_rows(p);
  p.m *= 16;
  const auto rows_big = table1_rows(p);
  const double ratio_small = rows_small[1].conventional / rows_small[1].neuromorphic;
  const double ratio_big = rows_big[1].conventional / rows_big[1].neuromorphic;
  EXPECT_GT(ratio_big, ratio_small * 8);
}

TEST(Fit, GeometricSizes) {
  const auto sizes = geometric_sizes(16, 2.0, 4);
  EXPECT_EQ(sizes, (std::vector<std::size_t>{16, 32, 64, 128}));
  EXPECT_THROW(geometric_sizes(0, 2.0, 3), InvalidArgument);
}

TEST(Fit, DetectsCorrectAndWrongExponents) {
  std::vector<double> xs, ys;
  for (double x = 32; x <= 4096; x *= 2) {
    xs.push_back(x);
    ys.push_back(0.7 * x * std::sqrt(x));
  }
  EXPECT_TRUE(check_power_law(xs, ys, 1.5).ok);
  EXPECT_FALSE(check_power_law(xs, ys, 2.0).ok);
  const auto c = check_power_law(xs, ys, 1.5);
  EXPECT_NEAR(c.fitted_constant, 0.7, 1e-6);
  EXPECT_NE(describe(c).find("[OK]"), std::string::npos);
}

TEST(Platforms, Table3Contents) {
  const auto& all = platforms();
  ASSERT_EQ(all.size(), 5u);
  const auto& truenorth = platform_by_name("TrueNorth");
  EXPECT_EQ(truenorth.process_nm, 28);
  EXPECT_DOUBLE_EQ(*truenorth.neurons_per_chip(), 256.0 * 4096.0);
  const auto& loihi = platform_by_name("Loihi");
  EXPECT_DOUBLE_EQ(*loihi.neurons_per_chip(), 1024.0 * 128.0);
  EXPECT_DOUBLE_EQ(*loihi.pj_per_spike, 23.6);
  const auto& cpu = platform_by_name("Core i7-9700T");
  EXPECT_TRUE(cpu.is_cpu);
  EXPECT_FALSE(cpu.neurons_per_chip().has_value());
  EXPECT_THROW(platform_by_name("Abacus"), InvalidArgument);
}

TEST(Platforms, EnergyModel) {
  const auto& loihi = platform_by_name("Loihi");
  // 10^6 spikes at 23.6 pJ = 23.6 µJ.
  EXPECT_NEAR(spike_energy_joules(loihi, 1000000), 23.6e-6, 1e-12);
  // CPU: 4.3e9 ops at 4.3 GHz / 35 W = one second = 35 J.
  EXPECT_NEAR(cpu_energy_joules(4300000000ULL), 35.0, 1e-9);
  EXPECT_THROW(spike_energy_joules(platform_by_name("SpiNNaker 2"), 1),
               InvalidArgument);
}

TEST(Calibrate, RecoversKnownConstant) {
  std::vector<ProblemParams> ps;
  std::vector<double> costs;
  for (const std::uint64_t k : {2ULL, 4ULL, 8ULL, 16ULL}) {
    ProblemParams p;
    p.k = k;
    p.m = 100;
    ps.push_back(p);
    costs.push_back(3.5 * nga::conv_khop(p));  // cost = 3.5·km exactly
  }
  const auto model = calibrate(ps, costs, nga::conv_khop);
  EXPECT_NEAR(model.constant, 3.5, 1e-9);
  EXPECT_NEAR(model.max_rel_error, 0.0, 1e-9);
  ProblemParams big;
  big.k = 64;
  big.m = 100;
  EXPECT_NEAR(model.predict(big), 3.5 * 6400, 1e-6);
}

TEST(Calibrate, PredictsGateLevelKhopFromSmallRuns) {
  // Calibrate the Theorem 4.3 spiking-time formula on k ∈ {2, 4, 8}, then
  // predict k = 24 within 10%.
  Rng rng(0xCAB);
  const Graph g = make_random_graph(16, 64, {1, 6}, rng);
  std::vector<ProblemParams> ps;
  std::vector<double> costs;
  auto run = [&](std::uint32_t k) {
    nga::KHopPolyOptions opt;
    opt.source = 0;
    opt.k = k;
    return static_cast<double>(nga::khop_sssp_poly(g, opt).execution_time);
  };
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    ProblemParams p;
    p.n = 16;
    p.m = 64;
    p.k = k;
    p.U = 6;
    ps.push_back(p);
    costs.push_back(run(k));
  }
  // The implementation's round period is Θ(λ) with λ = bits_for((k+1)U+1)
  // (tighter than the paper's log(nU), which assumes k ≤ n); calibrate
  // against the implementation-exact shape.
  const auto spiking_formula = [](const ProblemParams& p) {
    return static_cast<double>(p.k) *
           static_cast<double>(bits_for((p.k + 1) * p.U + 1));
  };
  const auto model = calibrate(ps, costs, spiking_formula);
  EXPECT_LT(model.max_rel_error, 0.05);  // the shape fits the small runs
  ProblemParams big;
  big.n = 16;
  big.m = 64;
  big.k = 24;
  big.U = 6;
  const double predicted = model.predict(big);
  const double actual = run(24);
  EXPECT_NEAR(predicted / actual, 1.0, 0.10);
}

TEST(Calibrate, RejectsBadInputs) {
  EXPECT_THROW(calibrate({}, {}, nga::conv_khop), InvalidArgument);
  ProblemParams p;
  p.k = 1;
  p.m = 1;
  EXPECT_THROW(calibrate({p}, {0.0}, nga::conv_khop), InvalidArgument);
  EXPECT_THROW(CalibratedModel{}.predict(p), InvalidArgument);
}

TEST(Platforms, ChipAggregation) {
  // Figure 6/7: a Loihi chip hosts 128K neurons; 1M neurons ≈ 8 chips.
  const auto& loihi = platform_by_name("Loihi");
  EXPECT_EQ(chips_required(loihi, 1000000), 8u);
  EXPECT_EQ(chips_required(loihi, 1), 1u);
}

}  // namespace
}  // namespace sga::analysis
