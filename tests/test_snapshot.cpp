// Snapshot / restore / replay-journal tests (snn/snapshot.h;
// docs/PERSISTENCE.md).
//
// The load-bearing tests are DIFFERENTIAL: a run that pauses, snapshots,
// restores into a fresh simulator (same engine, the other queue kind, the
// other fan-out kind, the sharded engine, a different shard count) and
// resumes must be event-for-event identical to the uninterrupted run —
// same spike log, same per-neuron state, same semantic SimStats. The
// malformed-stream tests pin the all-or-nothing failure contract: every
// corrupt byte stream throws SnapshotError naming the failing section and
// leaves the target simulator untouched.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/random.h"
#include "snn/compiled_network.h"
#include "snn/network.h"
#include "snn/parallel_sim.h"
#include "snn/simulator.h"
#include "snn/snapshot.h"

namespace sga::snn {
namespace {

struct Workload {
  Network net;
  std::vector<std::pair<NeuronId, Time>> injections;
};

/// Random integer-weight LIF network + injections. Integer weights and
/// thresholds keep every engine bit-exact regardless of delivery order, so
/// differential comparisons can demand full equality.
Workload make_workload(std::uint64_t seed, std::size_t n, std::size_t m,
                       Delay max_delay) {
  Rng rng(seed);
  Workload w;
  for (std::size_t i = 0; i < n; ++i) {
    NeuronParams p;
    p.v_threshold = static_cast<Voltage>(rng.uniform_int(1, 3));
    p.tau = rng.bernoulli(0.3) ? 1.0 : 0.0;
    w.net.add_neuron(p);
  }
  const auto last = static_cast<std::int64_t>(n) - 1;
  for (std::size_t e = 0; e < m; ++e) {
    const auto from = static_cast<NeuronId>(rng.uniform_int(0, last));
    const auto to = static_cast<NeuronId>(rng.uniform_int(0, last));
    SynWeight wt = static_cast<SynWeight>(rng.uniform_int(1, 3));
    if (rng.bernoulli(0.15)) wt = -wt;
    w.net.add_synapse(from, to, wt, rng.uniform_int(1, max_delay));
  }
  const std::size_t ni = 2 + n / 8;
  for (std::size_t i = 0; i < ni; ++i) {
    w.injections.emplace_back(static_cast<NeuronId>(rng.uniform_int(0, last)),
                              rng.uniform_int(0, 4));
  }
  return w;
}

SimConfig recording_config() {
  SimConfig cfg;
  cfg.record_spike_log = true;
  cfg.record_causes = true;
  cfg.max_time = 500;  // bound cyclic workloads
  return cfg;
}

void expect_core_stats_eq(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.spikes, b.spikes);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.event_times, b.event_times);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.hit_terminal, b.hit_terminal);
  EXPECT_EQ(a.hit_time_limit, b.hit_time_limit);
  EXPECT_EQ(a.paused, b.paused);
  EXPECT_EQ(a.execution_time, b.execution_time);
}

std::vector<std::pair<Time, NeuronId>> sorted_log(
    std::vector<std::pair<Time, NeuronId>> log) {
  std::sort(log.begin(), log.end());
  return log;
}

/// Full per-neuron state equality across any two engines.
template <typename SimA, typename SimB>
void expect_state_eq(const SimA& a, const SimB& b, std::size_t n) {
  for (NeuronId i = 0; i < n; ++i) {
    EXPECT_EQ(a.first_spike(i), b.first_spike(i)) << "neuron " << i;
    EXPECT_EQ(a.last_spike(i), b.last_spike(i)) << "neuron " << i;
    EXPECT_EQ(a.spike_count(i), b.spike_count(i)) << "neuron " << i;
    EXPECT_EQ(a.potential(i), b.potential(i)) << "neuron " << i;
    EXPECT_EQ(a.first_spike_cause(i), b.first_spike_cause(i))
        << "neuron " << i;
  }
}

// ---- Format constants (pinned against docs/PERSISTENCE.md) --------------

TEST(SnapshotFormat, ConstantsMatchTheDocumentedLayout) {
  EXPECT_EQ(kSnapshotMagic, 0x53414753u);  // "SGAS" little-endian
  EXPECT_EQ(kSnapshotVersion, 1);
  EXPECT_EQ(kJournalMagic, 0x4a414753u);  // "SGAJ" little-endian
  EXPECT_EQ(kJournalVersion, 1);
  EXPECT_EQ(kSecFingerprint, 1);
  EXPECT_EQ(kSecConfig, 2);
  EXPECT_EQ(kSecNeuron, 3);
  EXPECT_EQ(kSecQueue, 4);
  EXPECT_EQ(kSecLog, 5);
  EXPECT_EQ(kSecStats, 6);
  EXPECT_EQ(kFlagMidRun, 1u << 0);
  EXPECT_EQ(kFlagRecordCauses, 1u << 1);
  EXPECT_EQ(kFlagRecordLog, 1u << 2);
  EXPECT_EQ(kFlagWatchAll, 1u << 3);
  EXPECT_EQ(kFlagTerminalFired, 1u << 4);

  Workload w = make_workload(0xF0, 8, 20, 4);
  const CompiledNetwork net(w.net);
  const Simulator sim(net);
  const std::vector<std::uint8_t> bytes = sim.snapshot();
  ASSERT_GE(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], 'S');
  EXPECT_EQ(bytes[1], 'G');
  EXPECT_EQ(bytes[2], 'A');
  EXPECT_EQ(bytes[3], 'S');
  EXPECT_EQ(bytes[4], 1);  // version lo byte
  EXPECT_EQ(bytes[5], 0);  // version hi byte
  // Trailing CRC-32 covers everything before it.
  const std::uint32_t crc = snapshot_crc32(bytes.data(), bytes.size() - 4);
  const std::uint32_t stored =
      static_cast<std::uint32_t>(bytes[bytes.size() - 4]) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 3]) << 8) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[bytes.size() - 1]) << 24);
  EXPECT_EQ(crc, stored);
  // Identical state serializes to identical bytes (pure function).
  EXPECT_EQ(bytes, sim.snapshot());
}

// ---- Round trips ---------------------------------------------------------

TEST(Snapshot, PreRunRoundTripPreservesInjections) {
  Workload w = make_workload(0xA1, 24, 90, 5);
  const CompiledNetwork net(w.net);
  Simulator a(net);
  for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
  const std::vector<std::uint8_t> bytes = a.snapshot();

  Simulator b(net);
  b.restore(bytes);
  const SimConfig cfg = recording_config();
  Simulator ref(net);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sa = ref.run(cfg);
  const SimStats sb = b.run(cfg);
  expect_core_stats_eq(sa, sb);
  EXPECT_EQ(ref.spike_log(), b.spike_log());
  expect_state_eq(ref, b, net.num_neurons());
}

TEST(Snapshot, PauseResumeInPlaceMatchesStraightThrough) {
  Workload w = make_workload(0xA2, 40, 200, 6);
  const CompiledNetwork net(w.net);
  const SimConfig cfg = recording_config();

  Simulator ref(net);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_GE(sref.end_time, 2) << "workload too quiet to pause mid-run";

  Simulator sim(net);
  for (const auto& [id, t] : w.injections) sim.inject_spike(id, t);
  SimConfig paused_cfg = cfg;
  paused_cfg.pause_time = sref.end_time / 2;
  const SimStats mid = sim.run(paused_cfg);
  ASSERT_TRUE(sim.paused());
  ASSERT_TRUE(mid.paused);
  EXPECT_GT(sim.resume_floor(), paused_cfg.pause_time);
  // A paused run lost nothing: resuming completes it exactly.
  const SimStats fin = sim.run(cfg);
  EXPECT_FALSE(sim.paused());
  expect_core_stats_eq(sref, fin);
  EXPECT_EQ(ref.spike_log(), sim.spike_log());
  expect_state_eq(ref, sim, net.num_neurons());
}

TEST(Snapshot, InjectWhilePausedRespectsTheResumeFloor) {
  Workload w = make_workload(0xA3, 30, 140, 5);
  const CompiledNetwork net(w.net);
  const SimConfig cfg = recording_config();
  Simulator probe_sim(net);
  for (const auto& [id, t] : w.injections) probe_sim.inject_spike(id, t);
  const SimStats sref = probe_sim.run(cfg);
  ASSERT_GE(sref.end_time, 4);
  const Time pause = sref.end_time / 2;

  // Both sims pause at the same step and receive the same late injection;
  // one takes the snapshot detour. They must agree completely.
  Simulator a(net);
  Simulator b(net);
  for (const auto& [id, t] : w.injections) {
    a.inject_spike(id, t);
    b.inject_spike(id, t);
  }
  SimConfig pc = cfg;
  pc.pause_time = pause;
  a.run(pc);
  b.run(pc);
  ASSERT_TRUE(a.paused() && b.paused());
  EXPECT_THROW(a.inject_spike(0, 0), Error);  // below the floor
  const Time at = a.resume_floor();
  a.inject_spike(w.injections[0].first, at + 1);
  b.inject_spike(w.injections[0].first, at + 1);

  Simulator c(net);
  c.restore(a.snapshot());
  const SimStats sa = a.run(cfg);
  const SimStats sc = c.run(cfg);
  const SimStats sb = b.run(cfg);
  expect_core_stats_eq(sa, sc);
  expect_core_stats_eq(sa, sb);
  EXPECT_EQ(a.spike_log(), c.spike_log());
  EXPECT_EQ(a.spike_log(), b.spike_log());
  expect_state_eq(a, c, net.num_neurons());
}

// ---- The serial differential matrix -------------------------------------

struct SerialVariant {
  QueueKind queue;
  FanoutKind fanout;
  StoragePolicy policy;
};

class SnapshotSerialMatrix : public ::testing::TestWithParam<SerialVariant> {};

TEST_P(SnapshotSerialMatrix, RestoreThenResumeEqualsStraightThrough) {
  const SerialVariant v = GetParam();
  Workload w = make_workload(0xB0 + static_cast<int>(v.queue) * 7 +
                                 static_cast<int>(v.fanout) * 3,
                             48, 260, 7);
  const CompiledNetwork net(w.net, v.policy);
  const SimConfig cfg = recording_config();

  Simulator ref(net, v.queue, v.fanout);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_GE(sref.end_time, 2);

  for (const Time frac : {4L, 2L, 1L}) {
    Simulator run_a(net, v.queue, v.fanout);
    for (const auto& [id, t] : w.injections) run_a.inject_spike(id, t);
    SimConfig pc = cfg;
    pc.pause_time = sref.end_time * (4 - frac + 1) / 5;
    run_a.run(pc);
    if (!run_a.paused()) continue;  // paused past the last event: nothing new

    Simulator run_b(net, v.queue, v.fanout);
    run_b.restore(run_a.snapshot());
    ASSERT_TRUE(run_b.paused());
    EXPECT_EQ(run_a.resume_floor(), run_b.resume_floor());
    const SimStats sb = run_b.run(cfg);
    expect_core_stats_eq(sref, sb);
    // Same-engine restore also preserves the queue/fan-out counters (the
    // engine/allocation artifacts empty_bucket_scans and pool_* are
    // explicitly excluded — docs/PERSISTENCE.md).
    EXPECT_EQ(sref.peak_queue_events, sb.peak_queue_events);
    EXPECT_EQ(sref.max_bucket_occupancy, sb.max_bucket_occupancy);
    EXPECT_EQ(sref.fanout_segments, sb.fanout_segments);
    EXPECT_EQ(sref.bulk_appends, sb.bulk_appends);
    EXPECT_EQ(ref.spike_log(), run_b.spike_log());
    expect_state_eq(ref, run_b, net.num_neurons());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SnapshotSerialMatrix,
    ::testing::Values(
        SerialVariant{QueueKind::kCalendar, FanoutKind::kSegmented,
                      StoragePolicy::kAuto},
        SerialVariant{QueueKind::kCalendar, FanoutKind::kSegmented,
                      StoragePolicy::kWide},
        SerialVariant{QueueKind::kCalendar, FanoutKind::kPerSynapse,
                      StoragePolicy::kAuto},
        SerialVariant{QueueKind::kMap, FanoutKind::kSegmented,
                      StoragePolicy::kAuto},
        SerialVariant{QueueKind::kMap, FanoutKind::kPerSynapse,
                      StoragePolicy::kWide}));

TEST(Snapshot, CrossQueueKindRestore) {
  Workload w = make_workload(0xC1, 36, 180, 6);
  const CompiledNetwork net(w.net);
  const SimConfig cfg = recording_config();
  Simulator ref(net, QueueKind::kCalendar);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_GE(sref.end_time, 2);

  for (const QueueKind src : {QueueKind::kCalendar, QueueKind::kMap}) {
    const QueueKind dst =
        src == QueueKind::kCalendar ? QueueKind::kMap : QueueKind::kCalendar;
    Simulator a(net, src);
    for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
    SimConfig pc = cfg;
    pc.pause_time = sref.end_time / 2;
    a.run(pc);
    ASSERT_TRUE(a.paused());
    Simulator b(net, dst);
    b.restore(a.snapshot());
    const SimStats sb = b.run(cfg);
    expect_core_stats_eq(sref, sb);
    EXPECT_EQ(ref.spike_log(), b.spike_log());
    expect_state_eq(ref, b, net.num_neurons());
  }
}

TEST(Snapshot, TerminalStateSurvivesRestore) {
  Workload w = make_workload(0xC2, 36, 200, 5);
  const CompiledNetwork net(w.net);
  SimConfig cfg = recording_config();
  // Pick a terminal that actually fires, from a reference run.
  Simulator probe_sim(net);
  for (const auto& [id, t] : w.injections) probe_sim.inject_spike(id, t);
  const SimStats sp = probe_sim.run(cfg);
  ASSERT_GE(sp.end_time, 4);
  // Terminal = the latest-firing neuron, so the pause lands before it.
  NeuronId terminal = kNoNeuron;
  Time latest = -1;
  for (NeuronId i = 0; i < net.num_neurons(); ++i) {
    const Time fs = probe_sim.first_spike(i);
    if (fs != kNever && fs > latest) {
      latest = fs;
      terminal = i;
    }
  }
  ASSERT_NE(terminal, kNoNeuron);
  ASSERT_GE(latest, 2) << "workload too quiet for a mid-run pause";
  cfg.terminal_neurons = {terminal};

  Simulator ref(net);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_TRUE(sref.hit_terminal);

  Simulator a(net);
  for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
  SimConfig pc = cfg;
  pc.pause_time = probe_sim.first_spike(terminal) / 2;
  a.run(pc);
  ASSERT_TRUE(a.paused());
  Simulator b(net);
  b.restore(a.snapshot());
  const SimStats sb = b.run(cfg);
  EXPECT_TRUE(sb.hit_terminal);
  EXPECT_EQ(sref.execution_time, sb.execution_time);
  expect_core_stats_eq(sref, sb);
}

// ---- Cross-engine: serial <-> sharded -----------------------------------

TEST(Snapshot, SerialSnapshotRestoresIntoParallel) {
  Workload w = make_workload(0xD1, 48, 260, 6);
  const CompiledNetwork net(w.net);
  const SimConfig cfg = recording_config();
  Simulator ref(net);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_GE(sref.end_time, 2);

  Simulator a(net);
  for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
  SimConfig pc = cfg;
  pc.pause_time = sref.end_time / 2;
  a.run(pc);
  ASSERT_TRUE(a.paused());
  const std::vector<std::uint8_t> bytes = a.snapshot();

  for (const std::size_t shards : {2u, 3u}) {
    ParallelConfig pcfg;
    pcfg.num_shards = shards;
    pcfg.num_threads = 2;
    ParallelSimulator par(net, pcfg);
    par.restore(bytes);
    ASSERT_TRUE(par.paused());
    EXPECT_EQ(par.resume_floor(), a.resume_floor());
    const SimStats sp = par.run(cfg);
    expect_core_stats_eq(sref, sp);
    EXPECT_EQ(sorted_log(ref.spike_log()), par.spike_log());
    expect_state_eq(ref, par, net.num_neurons());
  }
}

TEST(Snapshot, ParallelSnapshotRestoresIntoSerialAndOtherShardCounts) {
  Workload w = make_workload(0xD2, 48, 260, 6);
  const CompiledNetwork net(w.net);
  const SimConfig cfg = recording_config();
  Simulator ref(net);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_GE(sref.end_time, 2);

  ParallelConfig pcfg;
  pcfg.num_shards = 3;
  pcfg.num_threads = 2;
  ParallelSimulator a(net, pcfg);
  for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
  SimConfig pc = cfg;
  pc.pause_time = sref.end_time / 2;
  a.run(pc);
  ASSERT_TRUE(a.paused());
  const std::vector<std::uint8_t> bytes = a.snapshot();

  // Parallel -> serial.
  Simulator b(net);
  b.restore(bytes);
  const SimStats sb = b.run(cfg);
  expect_core_stats_eq(sref, sb);
  EXPECT_EQ(sorted_log(ref.spike_log()), sorted_log(b.spike_log()));
  expect_state_eq(ref, b, net.num_neurons());

  // Parallel(3) -> parallel(2): shard structure is not part of the image.
  ParallelConfig pcfg2;
  pcfg2.num_shards = 2;
  pcfg2.num_threads = 2;
  ParallelSimulator c(net, pcfg2);
  c.restore(bytes);
  const SimStats sc = c.run(cfg);
  expect_core_stats_eq(sref, sc);
  EXPECT_EQ(sorted_log(ref.spike_log()), c.spike_log());
  expect_state_eq(ref, c, net.num_neurons());

  // In-place resume of the original paused run still works after the
  // snapshot was taken (snapshot() is const).
  const SimStats sa = a.run(cfg);
  expect_core_stats_eq(sref, sa);
  EXPECT_EQ(sorted_log(ref.spike_log()), a.spike_log());
}

TEST(Snapshot, RestoreIntoEveryEngineConfigReplaysBitIdentically) {
  // ISSUE 9: the snapshot image is engine-agnostic, so a paused serial
  // image must resume bit-identically under every cell of the parallel
  // ablation matrix — {kLpt, kCutRefined} × {kMailbox, kSharedAtomic} ×
  // stealing {off, on}. Causes stay off so kSharedAtomic really runs its
  // atomic ring rather than the documented mailbox fallback.
  Workload w = make_workload(0xE9, 48, 260, 6);
  const CompiledNetwork net(w.net);
  SimConfig cfg = recording_config();
  cfg.record_causes = false;
  Simulator ref(net);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_GE(sref.end_time, 2);

  Simulator a(net);
  for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
  SimConfig pc = cfg;
  pc.pause_time = sref.end_time / 2;
  a.run(pc);
  ASSERT_TRUE(a.paused());
  const std::vector<std::uint8_t> bytes = a.snapshot();

  for (const PartitionKind part :
       {PartitionKind::kLpt, PartitionKind::kCutRefined}) {
    for (const EngineKind engine :
         {EngineKind::kMailbox, EngineKind::kSharedAtomic}) {
      for (const bool steal : {false, true}) {
        SCOPED_TRACE(::testing::Message()
                     << "partition "
                     << (part == PartitionKind::kLpt ? "lpt" : "cut")
                     << " engine "
                     << (engine == EngineKind::kMailbox ? "mailbox" : "atomic")
                     << " steal " << steal);
        ParallelConfig pcfg;
        pcfg.num_shards = 3;
        pcfg.num_threads = 2;
        pcfg.partition = part;
        pcfg.engine = engine;
        pcfg.work_stealing = steal;
        ParallelSimulator par(net, pcfg);
        par.restore(bytes);
        ASSERT_TRUE(par.paused());
        const SimStats sp = par.run(cfg);
        expect_core_stats_eq(sref, sp);
        EXPECT_EQ(sorted_log(ref.spike_log()), par.spike_log());
        expect_state_eq(ref, par, net.num_neurons());
      }
    }
  }
}

TEST(Snapshot, SharedAtomicPauseSnapshotRoundTrips) {
  // Pausing the shared-atomic engine folds the whole in-flight ring back
  // into the shard queues before the image is taken; the image must then
  // restore into the serial engine, a differently-sharded atomic engine,
  // and the mailbox engine, all replaying the straight-through run.
  Workload w = make_workload(0xEA, 48, 260, 6);
  const CompiledNetwork net(w.net);
  SimConfig cfg = recording_config();
  cfg.record_causes = false;
  Simulator ref(net);
  for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
  const SimStats sref = ref.run(cfg);
  ASSERT_GE(sref.end_time, 2);

  ParallelConfig pcfg;
  pcfg.num_shards = 3;
  pcfg.num_threads = 2;
  pcfg.engine = EngineKind::kSharedAtomic;
  ParallelSimulator a(net, pcfg);
  for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
  SimConfig pc = cfg;
  pc.pause_time = sref.end_time / 2;
  a.run(pc);
  ASSERT_TRUE(a.paused());
  const std::vector<std::uint8_t> bytes = a.snapshot();

  Simulator b(net);
  b.restore(bytes);
  const SimStats sb = b.run(cfg);
  expect_core_stats_eq(sref, sb);
  EXPECT_EQ(sorted_log(ref.spike_log()), sorted_log(b.spike_log()));
  expect_state_eq(ref, b, net.num_neurons());

  ParallelConfig pcfg2 = pcfg;
  pcfg2.num_shards = 2;
  ParallelSimulator c(net, pcfg2);
  c.restore(bytes);
  const SimStats sc = c.run(cfg);
  expect_core_stats_eq(sref, sc);
  EXPECT_EQ(sorted_log(ref.spike_log()), c.spike_log());
  expect_state_eq(ref, c, net.num_neurons());

  ParallelConfig pcfg3 = pcfg;
  pcfg3.engine = EngineKind::kMailbox;
  ParallelSimulator d(net, pcfg3);
  d.restore(bytes);
  const SimStats sd = d.run(cfg);
  expect_core_stats_eq(sref, sd);
  EXPECT_EQ(sorted_log(ref.spike_log()), d.spike_log());

  // In-place resume of the paused atomic run still works afterwards.
  const SimStats sa = a.run(cfg);
  expect_core_stats_eq(sref, sa);
  EXPECT_EQ(sorted_log(ref.spike_log()), a.spike_log());
}

// ---- Journal -------------------------------------------------------------

TEST(SpikeJournal, RoundTripAndReplay) {
  Workload w = make_workload(0xE1, 24, 110, 5);
  const CompiledNetwork net(w.net);
  const SimConfig cfg = recording_config();

  SpikeJournal journal;
  Simulator ref(net);
  for (const auto& [id, t] : w.injections) {
    ref.inject_spike(id, t);
    journal.record(id, t);
  }
  const SimStats sref = ref.run(cfg);

  // Serialize -> deserialize preserves entries in record order.
  const std::vector<std::uint8_t> bytes = journal.serialize();
  ASSERT_GE(bytes.size(), 20u);
  EXPECT_EQ(bytes[0], 'S');
  EXPECT_EQ(bytes[1], 'G');
  EXPECT_EQ(bytes[2], 'A');
  EXPECT_EQ(bytes[3], 'J');
  const SpikeJournal back = SpikeJournal::deserialize(bytes);
  EXPECT_EQ(back.entries(), journal.entries());

  // Replaying the journal into a fresh simulator reproduces the run.
  Simulator replay(net);
  back.replay_into(replay);
  const SimStats sr = replay.run(cfg);
  expect_core_stats_eq(sref, sr);
  EXPECT_EQ(ref.spike_log(), replay.spike_log());

  // Tail replay: snapshot mid-journal, replay only the entries after it.
  Simulator half(net);
  SpikeJournal tail_journal;
  const std::size_t half_count = journal.size() / 2;
  for (std::size_t i = 0; i < journal.size(); ++i) {
    const auto& [id, t] = journal.entries()[i];
    if (i < half_count) half.inject_spike(id, t);
    tail_journal.record(id, t);
  }
  const std::vector<std::uint8_t> snap = half.snapshot();
  Simulator resumed(net);
  resumed.restore(snap);
  tail_journal.replay_into(resumed, half_count);
  const SimStats st = resumed.run(cfg);
  expect_core_stats_eq(sref, st);
  EXPECT_EQ(ref.spike_log(), resumed.spike_log());
}

TEST(SpikeJournal, MalformedStreamsThrow) {
  SpikeJournal j;
  j.record(3, 7);
  j.record(1, 0);
  std::vector<std::uint8_t> bytes = j.serialize();

  for (const std::size_t len : {std::size_t{0}, std::size_t{4},
                                std::size_t{19}, bytes.size() - 1}) {
    EXPECT_THROW(SpikeJournal::deserialize(bytes.data(), len), SnapshotError);
  }
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_THROW(SpikeJournal::deserialize(bad_magic), SnapshotError);
  std::vector<std::uint8_t> bad_crc = bytes;
  bad_crc[bytes.size() / 2] ^= 0x01;
  try {
    SpikeJournal::deserialize(bad_crc);
    FAIL() << "corrupt journal accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "journal");
  }
}

// ---- Malformed snapshots -------------------------------------------------

class SnapshotMalformed : public ::testing::Test {
 protected:
  void SetUp() override {
    Workload w = make_workload(0xF1, 20, 80, 4);
    net_ = std::make_unique<CompiledNetwork>(w.net);
    sim_ = std::make_unique<Simulator>(*net_);
    for (const auto& [id, t] : w.injections) sim_->inject_spike(id, t);
    SimConfig cfg = recording_config();
    cfg.pause_time = 2;
    sim_->run(cfg);
    bytes_ = sim_->snapshot();
  }

  /// Re-stamp the trailing CRC after a deliberate mutation, so the stream
  /// fails on the TARGET check, not on the integrity check.
  void restamp(std::vector<std::uint8_t>& b) {
    const std::uint32_t crc = snapshot_crc32(b.data(), b.size() - 4);
    b[b.size() - 4] = static_cast<std::uint8_t>(crc);
    b[b.size() - 3] = static_cast<std::uint8_t>(crc >> 8);
    b[b.size() - 2] = static_cast<std::uint8_t>(crc >> 16);
    b[b.size() - 1] = static_cast<std::uint8_t>(crc >> 24);
  }

  std::string section_of(const std::vector<std::uint8_t>& b) {
    try {
      parse_snapshot(b);
      return "<accepted>";
    } catch (const SnapshotError& e) {
      return e.section();
    }
  }

  std::unique_ptr<CompiledNetwork> net_;
  std::unique_ptr<Simulator> sim_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(SnapshotMalformed, TruncationsThrowEverywhere) {
  // Every proper prefix must be rejected (CRC or framing, never a crash or
  // a silent partial parse).
  for (std::size_t len = 0; len < bytes_.size(); len += 7) {
    EXPECT_THROW(parse_snapshot(bytes_.data(), len), SnapshotError)
        << "prefix of " << len << " bytes accepted";
  }
  EXPECT_THROW(parse_snapshot(bytes_.data(), bytes_.size() - 1),
               SnapshotError);
}

TEST_F(SnapshotMalformed, FlippedByteFailsTheCrc) {
  std::vector<std::uint8_t> b = bytes_;
  b[b.size() / 2] ^= 0x20;
  EXPECT_EQ(section_of(b), "crc");
}

TEST_F(SnapshotMalformed, BadMagicAndVersionSkewAreHeaderErrors) {
  std::vector<std::uint8_t> bad_magic = bytes_;
  bad_magic[3] = 'X';
  restamp(bad_magic);
  EXPECT_EQ(section_of(bad_magic), "header");

  std::vector<std::uint8_t> future = bytes_;
  future[4] = 0x7F;  // version 127
  restamp(future);
  try {
    parse_snapshot(future);
    FAIL() << "future version accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "header");
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(SnapshotMalformed, TrailingGarbageRejected) {
  std::vector<std::uint8_t> b = bytes_;
  b.insert(b.end() - 4, {0xDE, 0xAD});
  restamp(b);
  EXPECT_THROW(parse_snapshot(b), SnapshotError);
}

TEST_F(SnapshotMalformed, WrongNetworkAndWidthMismatchFailTheFingerprint) {
  // Different shape.
  Workload other = make_workload(0xF2, 21, 80, 4);
  const CompiledNetwork other_net(other.net);
  Simulator other_sim(other_net);
  try {
    other_sim.restore(bytes_);
    FAIL() << "restore accepted a snapshot of a different network";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "fingerprint");
  }

  // Same shape, different frozen widths (kAuto narrow vs kWide oracle).
  Workload same = make_workload(0xF1, 20, 80, 4);
  const CompiledNetwork wide_net(same.net, StoragePolicy::kWide);
  ASSERT_FALSE(wide_net.storage_widths() == net_->storage_widths());
  Simulator wide_sim(wide_net);
  try {
    wide_sim.restore(bytes_);
    FAIL() << "restore accepted a snapshot frozen at different widths";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "fingerprint");
  }
}

TEST_F(SnapshotMalformed, RestoreIsAllOrNothing) {
  // Build a structurally valid stream whose SEMANTIC validation fails, and
  // prove the target simulator is untouched: it must still be paused and
  // resume identically to an undisturbed control.
  SnapshotImage img = parse_snapshot(bytes_);
  ASSERT_FALSE(img.neurons.empty());
  img.neurons[0].id = 1u << 20;  // out of range for this network
  const std::vector<std::uint8_t> corrupt = serialize_snapshot(img);
  try {
    sim_->restore(corrupt);
    FAIL() << "semantically invalid snapshot accepted";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.section(), "neuron");
  }
  ASSERT_TRUE(sim_->paused());

  // Bad queue target: the error names the queue section.
  SnapshotImage img2 = parse_snapshot(bytes_);
  if (!img2.queue.empty() && !img2.queue[0].deliveries.empty()) {
    img2.queue[0].deliveries[0].target = 1u << 20;
    const std::vector<std::uint8_t> corrupt2 = serialize_snapshot(img2);
    try {
      sim_->restore(corrupt2);
      FAIL() << "bad queue target accepted";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.section(), "queue");
    }
  }

  // The simulator still resumes exactly like an undisturbed restore.
  Simulator control(*net_);
  control.restore(bytes_);
  const SimConfig cfg = recording_config();
  const SimStats sa = sim_->run(cfg);
  const SimStats sb = control.run(cfg);
  expect_core_stats_eq(sa, sb);
  EXPECT_EQ(sim_->spike_log(), control.spike_log());
}

// ---- Fuzz: restore-then-run == straight-through across random configs ---

TEST(SnapshotFuzz, RandomConfigsResumeExactly) {
  Rng rng(0x5EED);
  int paused_cases = 0;
  for (int iter = 0; iter < 24; ++iter) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng.uniform_int(0, 56));
    const std::size_t m = n * static_cast<std::size_t>(rng.uniform_int(2, 6));
    const Delay max_d = 1 + rng.uniform_int(0, 7);
    Workload w = make_workload(0x1000 + iter, n, m, max_d);
    const StoragePolicy policy =
        rng.bernoulli(0.5) ? StoragePolicy::kAuto : StoragePolicy::kWide;
    const CompiledNetwork net(w.net, policy);
    const QueueKind queue =
        rng.bernoulli(0.5) ? QueueKind::kCalendar : QueueKind::kMap;
    const FanoutKind fanout =
        rng.bernoulli(0.5) ? FanoutKind::kSegmented : FanoutKind::kPerSynapse;

    SimConfig cfg = recording_config();
    cfg.record_causes = rng.bernoulli(0.7);
    Simulator ref(net, queue, fanout);
    for (const auto& [id, t] : w.injections) ref.inject_spike(id, t);
    const SimStats sref = ref.run(cfg);
    if (sref.end_time < 2) continue;

    Simulator a(net, queue, fanout);
    for (const auto& [id, t] : w.injections) a.inject_spike(id, t);
    SimConfig pc = cfg;
    pc.pause_time = rng.uniform_int(0, sref.end_time - 1);
    a.run(pc);
    if (!a.paused()) continue;
    ++paused_cases;

    // Restore into a randomly different engine.
    const bool to_parallel = rng.bernoulli(0.3);
    const std::vector<std::uint8_t> bytes = a.snapshot();
    SimStats got;
    std::vector<std::pair<Time, NeuronId>> got_log;
    if (to_parallel) {
      ParallelConfig pcfg;
      pcfg.num_shards = 1 + static_cast<std::size_t>(rng.uniform_int(0, 3));
      pcfg.num_threads = 2;
      ParallelSimulator b(net, pcfg);
      b.restore(bytes);
      got = b.run(cfg);
      got_log = b.spike_log();
    } else {
      Simulator b(net,
                  rng.bernoulli(0.5) ? QueueKind::kCalendar : QueueKind::kMap,
                  fanout);
      b.restore(bytes);
      got = b.run(cfg);
      got_log = sorted_log(b.spike_log());
    }
    expect_core_stats_eq(sref, got);
    EXPECT_EQ(sorted_log(ref.spike_log()), got_log) << "iter " << iter;
  }
  // The harness must actually exercise the restore path, not skip it all.
  EXPECT_GE(paused_cases, 12);
}

}  // namespace
}  // namespace sga::snn
