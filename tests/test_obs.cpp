// Unit tests for the src/obs observability layer: the JSON value type
// (writer + parser round trips), the MetricsRegistry (counters, gauges,
// timers, per-thread install, merge), the spike Probe against a network
// with known dynamics, and the BenchReport writer + sga-bench-v1 schema
// validator used by bench_compare and CI.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/error.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/report.h"
#include "snn/network.h"
#include "snn/simulator.h"

namespace sga::obs {
namespace {

// ---- Json ---------------------------------------------------------------

TEST(Json, LeafKindsArePreserved) {
  EXPECT_EQ(Json().kind(), Json::Kind::kNull);
  EXPECT_EQ(Json(true).kind(), Json::Kind::kBool);
  EXPECT_EQ(Json(std::int64_t{-3}).kind(), Json::Kind::kInt);
  EXPECT_EQ(Json(std::uint64_t{3}).kind(), Json::Kind::kUint);
  EXPECT_EQ(Json(1.5).kind(), Json::Kind::kDouble);
  EXPECT_EQ(Json("s").kind(), Json::Kind::kString);
  EXPECT_TRUE(Json(1.5).is_number());
  EXPECT_FALSE(Json("s").is_number());
}

TEST(Json, Uint64RoundTripsWithoutLoss) {
  // A counter value that double cannot represent exactly.
  const std::uint64_t big = (1ULL << 63) + 1;
  Json doc = Json::object();
  doc.set("n", Json(big));
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.find("n")->as_uint(), big);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json doc = Json::object();
  doc.set("zebra", 1).set("alpha", 2).set("mid", 3);
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_EQ(doc.members()[1].first, "alpha");
  EXPECT_EQ(doc.members()[2].first, "mid");
  // set() on an existing key overwrites in place, keeping the slot.
  doc.set("alpha", 9);
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[1].second.as_int(), 9);
}

TEST(Json, DumpParseRoundTripsNestedDocument) {
  Json doc = Json::object();
  doc.set("name", "bench \"quoted\"\n\ttabbed\\slash");
  doc.set("ok", true);
  doc.set("nothing", Json());
  doc.set("pi", 3.25);
  Json arr = Json::array();
  arr.push(1).push(Json::object().set("k", std::uint64_t{7}));
  doc.set("list", std::move(arr));

  for (const int indent : {0, 2}) {
    const Json back = Json::parse(doc.dump(indent));
    EXPECT_EQ(back.find("name")->as_string(),
              "bench \"quoted\"\n\ttabbed\\slash");
    EXPECT_TRUE(back.find("ok")->as_bool());
    EXPECT_EQ(back.find("nothing")->kind(), Json::Kind::kNull);
    EXPECT_DOUBLE_EQ(back.find("pi")->as_double(), 3.25);
    ASSERT_EQ(back.find("list")->elements().size(), 2u);
    EXPECT_EQ(back.find("list")->elements()[1].find("k")->as_uint(), 7u);
  }
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), InvalidArgument);
  EXPECT_THROW(Json::parse("{"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), InvalidArgument);
  EXPECT_THROW(Json::parse("[1, 2] trailing"), InvalidArgument);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), InvalidArgument);
  EXPECT_THROW(Json::parse("\"unterminated"), InvalidArgument);
}

TEST(Json, TypeMismatchThrows) {
  EXPECT_THROW(Json("s").as_int(), InvalidArgument);
  EXPECT_THROW(Json(1).as_string(), InvalidArgument);
  EXPECT_THROW(Json(1).set("k", 2), InvalidArgument);
  EXPECT_THROW(Json::object().push(1), InvalidArgument);
  EXPECT_EQ(Json(1).find("k"), nullptr);
}

// ---- MetricsRegistry ----------------------------------------------------

TEST(Metrics, CountersGaugesTimers) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.counter("absent"), 0u);

  reg.add("sim.spikes", 10);
  reg.add("sim.spikes", 5);
  reg.gauge("batch.workers", 4.0);
  reg.record_time("sim.run_ns", 100);
  reg.record_time("sim.run_ns", 300);

  EXPECT_EQ(reg.counter("sim.spikes"), 15u);
  EXPECT_DOUBLE_EQ(reg.gauges().at("batch.workers"), 4.0);
  const TimerStat& t = reg.timers().at("sim.run_ns");
  EXPECT_EQ(t.count, 2u);
  EXPECT_EQ(t.total_ns, 400u);
  EXPECT_EQ(t.max_ns, 300u);

  reg.clear();
  EXPECT_TRUE(reg.empty());
}

TEST(Metrics, MergeAddsCountersAndTimersKeepsFirstGauge) {
  MetricsRegistry a, b;
  a.add("c", 1);
  a.gauge("g", 1.0);
  a.record_time("t", 10);
  b.add("c", 2);
  b.add("only_b");
  b.gauge("g", 99.0);
  b.gauge("g2", 7.0);
  b.record_time("t", 50);

  a.merge(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauges().at("g"), 1.0);  // first-seen wins
  EXPECT_DOUBLE_EQ(a.gauges().at("g2"), 7.0);
  EXPECT_EQ(a.timers().at("t").count, 2u);
  EXPECT_EQ(a.timers().at("t").total_ns, 60u);
  EXPECT_EQ(a.timers().at("t").max_ns, 50u);
}

TEST(Metrics, ToJsonOmitsEmptySections) {
  MetricsRegistry reg;
  reg.add("c", 2);
  const Json j = reg.to_json();
  ASSERT_NE(j.find("counters"), nullptr);
  EXPECT_EQ(j.find("counters")->find("c")->as_uint(), 2u);
  EXPECT_EQ(j.find("gauges"), nullptr);
  EXPECT_EQ(j.find("timers"), nullptr);
}

TEST(Metrics, ThreadInstallAndRestore) {
  EXPECT_EQ(thread_metrics(), nullptr);
  MetricsRegistry outer, inner;
  {
    ScopedThreadMetrics a(&outer);
    EXPECT_EQ(thread_metrics(), &outer);
    {
      ScopedThreadMetrics b(&inner);
      EXPECT_EQ(thread_metrics(), &inner);
    }
    EXPECT_EQ(thread_metrics(), &outer);
  }
  EXPECT_EQ(thread_metrics(), nullptr);
}

TEST(Metrics, ScopedTimerRecordsAndNullRegistryIsNoOp) {
  MetricsRegistry reg;
  { ScopedTimer t(&reg, "x_ns"); }
  ASSERT_EQ(reg.timers().count("x_ns"), 1u);
  EXPECT_EQ(reg.timers().at("x_ns").count, 1u);
  { ScopedTimer t(nullptr, "y_ns"); }  // must not crash or record anywhere
  EXPECT_EQ(reg.timers().count("y_ns"), 0u);
}

// ---- Probe on a network with known dynamics -----------------------------

// Chain a -> b -> c (unit weights/thresholds, delay 1 then 2): injecting a
// at t=0 fires a@0, b@1, c@3; each non-source neuron receives exactly one
// delivery.
snn::Network make_chain() {
  snn::Network net;
  const NeuronId a = net.add_threshold_neuron(1);
  const NeuronId b = net.add_threshold_neuron(1);
  const NeuronId c = net.add_threshold_neuron(1);
  net.add_synapse(a, b, 1, 1);
  net.add_synapse(b, c, 1, 2);
  return net;
}

TEST(Probe, TraceCountersAndSamplesOnKnownChain) {
  ProbeOptions po;
  po.trace_spikes = true;
  po.count_fires = true;
  po.count_deliveries = true;
  po.sample_potentials = {1, 2};
  Probe probe(po);
  EXPECT_FALSE(probe.bound());

  snn::Simulator sim(make_chain());
  sim.attach_probe(probe);
  EXPECT_TRUE(probe.bound());
  EXPECT_EQ(sim.probe(), &probe);

  sim.inject_spike(0, 0);
  snn::SimConfig cfg;
  cfg.record_spike_log = true;  // the simulator's own log, for comparison
  const auto st = sim.run(cfg);

  EXPECT_EQ(st.spikes, 3u);
  // Trace == the simulator's full spike log, in order.
  EXPECT_EQ(probe.spike_trace(), sim.spike_log());
  const std::vector<std::pair<Time, NeuronId>> expected = {
      {0, 0}, {1, 1}, {3, 2}};
  EXPECT_EQ(probe.spike_trace(), expected);

  EXPECT_EQ(probe.total_fires(), 3u);
  EXPECT_EQ(probe.fires(0), 1u);
  EXPECT_EQ(probe.fires(1), 1u);
  EXPECT_EQ(probe.fires(2), 1u);

  // Deliveries received: b and c one each, a none (its spike was injected).
  EXPECT_EQ(probe.total_deliveries(), 2u);
  EXPECT_EQ(probe.deliveries(0), 0u);
  EXPECT_EQ(probe.deliveries(1), 1u);
  EXPECT_EQ(probe.deliveries(2), 1u);

  // Both registered neurons were updated exactly once; the update made each
  // fire, so the sampled value is the post-reset potential.
  ASSERT_EQ(probe.potential_samples().size(), 2u);
  EXPECT_EQ(probe.potential_samples()[0].time, 1);
  EXPECT_EQ(probe.potential_samples()[0].neuron, 1u);
  EXPECT_EQ(probe.potential_samples()[1].time, 3);
  EXPECT_EQ(probe.potential_samples()[1].neuron, 2u);
}

TEST(Probe, TraceFilterRestrictsTraceNotCounters) {
  ProbeOptions po;
  po.trace_spikes = true;
  po.trace_filter = {2};
  po.count_fires = true;
  Probe probe(po);
  snn::Simulator sim(make_chain());
  sim.attach_probe(probe);
  sim.inject_spike(0, 0);
  sim.run();

  const std::vector<std::pair<Time, NeuronId>> expected = {{3, 2}};
  EXPECT_EQ(probe.spike_trace(), expected);
  EXPECT_EQ(probe.total_fires(), 3u);  // counters still see every neuron
}

TEST(Probe, AccumulatesAcrossResetUntilCleared) {
  ProbeOptions po;
  po.count_fires = true;
  Probe probe(po);
  snn::Simulator sim(make_chain());
  sim.attach_probe(probe);

  sim.inject_spike(0, 0);
  sim.run();
  sim.reset();  // rewinds the simulation, NOT the probe
  sim.inject_spike(0, 0);
  sim.run();
  EXPECT_EQ(probe.total_fires(), 6u);

  probe.clear();
  EXPECT_EQ(probe.total_fires(), 0u);
  EXPECT_TRUE(probe.spike_trace().empty());
  EXPECT_TRUE(probe.bound());  // clear() keeps the binding

  sim.reset();
  sim.inject_spike(0, 0);
  sim.run();
  EXPECT_EQ(probe.total_fires(), 3u);
}

TEST(Probe, DetachStopsRecording) {
  ProbeOptions po;
  po.count_fires = true;
  Probe probe(po);
  snn::Simulator sim(make_chain());
  sim.attach_probe(probe);
  sim.detach_probe();
  EXPECT_EQ(sim.probe(), nullptr);
  sim.inject_spike(0, 0);
  sim.run();
  EXPECT_EQ(probe.total_fires(), 0u);
}

TEST(Probe, BindRejectsOutOfRangeIds) {
  {
    ProbeOptions po;
    po.trace_spikes = true;
    po.trace_filter = {3};  // chain has neurons 0..2
    Probe probe(po);
    snn::Simulator sim(make_chain());
    EXPECT_THROW(sim.attach_probe(probe), InvalidArgument);
  }
  {
    ProbeOptions po;
    po.sample_potentials = {7};
    Probe probe(po);
    snn::Simulator sim(make_chain());
    EXPECT_THROW(sim.attach_probe(probe), InvalidArgument);
  }
}

// ---- BenchReport + schema validator -------------------------------------

class BenchReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test AND per process: ctest runs each TEST as its own
    // process, possibly in parallel, so a shared name would race on
    // create/remove_all.
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("sga_obs_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            "_" + std::to_string(static_cast<long>(::getpid())));
    std::filesystem::create_directories(dir_);
    ::setenv("SGA_BENCH_JSON_DIR", dir_.c_str(), 1);
    ::unsetenv("SGA_BENCH_JSON");
  }
  void TearDown() override {
    ::unsetenv("SGA_BENCH_JSON_DIR");
    ::unsetenv("SGA_GIT_SHA");
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

TEST_F(BenchReportTest, WritesValidatableDocument) {
  ::setenv("SGA_GIT_SHA", "deadbeef", 1);
  std::string path;
  {
    BenchReport report("unit");
    report.context("queue", "calendar");
    report.record("w1").T(10).spikes(3).wall_ns(1234).events(7).set(
        "neurons", std::uint64_t{42});
    MetricsRegistry reg;
    reg.add("sim.spikes", 3);
    report.metrics(reg);
    path = report.write();
  }
  ASSERT_EQ(path, (dir_ / "BENCH_unit.json").string());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());

  EXPECT_EQ(validate_bench_json(doc), "");
  EXPECT_EQ(doc.find("schema")->as_string(), "sga-bench-v1");
  EXPECT_EQ(doc.find("bench")->as_string(), "unit");
  EXPECT_EQ(doc.find("git_sha")->as_string(), "deadbeef");  // env override
  EXPECT_EQ(doc.find("context")->find("queue")->as_string(), "calendar");
  ASSERT_EQ(doc.find("records")->elements().size(), 1u);
  const Json& rec = doc.find("records")->elements()[0];
  EXPECT_EQ(rec.find("name")->as_string(), "w1");
  EXPECT_EQ(rec.find("T")->as_int(), 10);
  EXPECT_EQ(rec.find("spikes")->as_uint(), 3u);
  EXPECT_EQ(rec.find("wall_ns")->as_uint(), 1234u);
  EXPECT_EQ(rec.find("events")->as_uint(), 7u);
  EXPECT_EQ(rec.find("neurons")->as_uint(), 42u);
  EXPECT_EQ(doc.find("metrics")->find("counters")->find("sim.spikes")
                ->as_uint(),
            3u);
}

TEST_F(BenchReportTest, DestructorWritesAndEnvSuppresses) {
  { BenchReport report("dtor"); }
  EXPECT_TRUE(std::filesystem::exists(dir_ / "BENCH_dtor.json"));

  ::setenv("SGA_BENCH_JSON", "0", 1);
  {
    BenchReport report("suppressed");
    EXPECT_EQ(report.write(), "");
  }
  EXPECT_FALSE(std::filesystem::exists(dir_ / "BENCH_suppressed.json"));
  ::unsetenv("SGA_BENCH_JSON");
}

TEST(BenchSchema, ValidatorCatchesMalformedDocuments) {
  Json ok = Json::object();
  ok.set("schema", "sga-bench-v1");
  ok.set("bench", "x");
  ok.set("git_sha", "abc");
  ok.set("build_type", "Release");
  Json rec = Json::object();
  rec.set("name", "r").set("T", 1).set("spikes", std::uint64_t{2});
  ok.set("records", Json::array().push(std::move(rec)));
  EXPECT_EQ(validate_bench_json(ok), "");

  Json wrong_schema = ok;
  wrong_schema.set("schema", "v999");
  EXPECT_NE(validate_bench_json(wrong_schema), "");

  Json no_records = ok;
  no_records.set("records", Json());
  EXPECT_NE(validate_bench_json(no_records), "");

  Json nameless = ok;
  nameless.set("records", Json::array().push(Json::object().set("T", 1)));
  EXPECT_NE(validate_bench_json(nameless), "");

  Json bad_T = ok;
  bad_T.set("records", Json::array().push(
                           Json::object().set("name", "r").set("T", "ten")));
  EXPECT_NE(validate_bench_json(bad_T), "");

  EXPECT_NE(validate_bench_json(Json(1)), "");
}

}  // namespace
}  // namespace sga::obs
