// Network-flow demo (the paper's Section-8 future-work direction): compute
// the maximum throughput of a layered supply pipeline with the
// neuromorphic-assisted Edmonds–Karp — every augmenting-path search is a
// spiking BFS on the residual network — and compare against the
// conventional reference.
//
//   ./examples/maxflow_pipeline
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "graph/generators.h"
#include "nga/maxflow.h"

int main() {
  using namespace sga;

  // A layered "pipeline": source feeds 4 intake stations, goods move
  // through two processing layers into a sink. Capacities = edge lengths.
  Rng rng(77);
  Graph g(11);
  const VertexId source = 0, sink = 10;
  for (VertexId intake = 1; intake <= 4; ++intake) {
    g.add_edge(source, intake, rng.uniform_int(4, 9));
  }
  for (VertexId intake = 1; intake <= 4; ++intake) {
    for (VertexId proc = 5; proc <= 7; ++proc) {
      if (rng.bernoulli(0.7)) g.add_edge(intake, proc, rng.uniform_int(2, 6));
    }
  }
  for (VertexId proc = 5; proc <= 7; ++proc) {
    for (VertexId out = 8; out <= 9; ++out) {
      g.add_edge(proc, out, rng.uniform_int(3, 8));
    }
  }
  g.add_edge(8, sink, 12);
  g.add_edge(9, sink, 12);

  std::cout << "Pipeline: " << g.summary() << "\n\n";

  nga::MaxFlowOptions opt;
  opt.source = source;
  opt.sink = sink;
  const auto flow = nga::spiking_max_flow(g, opt);
  const auto ref = nga::reference_max_flow(g, source, sink);

  std::cout << "Maximum throughput: " << flow.value
            << " units (conventional reference: " << ref << ")\n";
  std::cout << "Augmenting phases: " << flow.phases << "; spiking searches: "
            << flow.total_spikes << " spikes, " << flow.total_snn_steps
            << " SNN steps total\n\n";

  Table t({"edge", "capacity", "flow"});
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (flow.flow[e] == 0) continue;
    t.add_row({Table::num(static_cast<std::int64_t>(g.edge(e).from)) + " -> " +
                   Table::num(static_cast<std::int64_t>(g.edge(e).to)),
               Table::num(g.edge(e).length), Table::num(flow.flow[e])});
  }
  t.set_title("Saturating flow assignment (zero-flow edges omitted)");
  t.print(std::cout);

  std::cout << "\nEach phase's path search is the Section-3 spiking SSSP "
               "with unit delays on the residual graph — first-spike order "
               "IS breadth-first order, so the hardware does the search.\n";
  return 0;
}
