// Energy estimation (Appendix A / Table 3): run the spiking SSSP on a
// mid-size graph, count spike events, and convert to energy on each
// surveyed neuromorphic platform vs a rough CPU estimate for Dijkstra —
// the quantitative side of the paper's "orders of magnitude lower energy"
// motivation. Also shows the Figure 6/7 chip-aggregation arithmetic.
//
//   ./examples/energy_estimate
#include <iostream>

#include "analysis/platforms.h"
#include "core/random.h"
#include "core/table.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"

int main() {
  using namespace sga;
  Rng rng(4242);
  const Graph g = make_random_graph(2000, 16000, {1, 50}, rng);
  std::cout << "Workload: SSSP on " << g.summary() << "\n\n";

  nga::SpikingSsspOptions opt;
  opt.source = 0;
  opt.record_parents = false;
  const auto snn = nga::spiking_sssp(g, opt);
  const auto ref = dijkstra(g, 0);

  std::cout << "Spiking run: " << snn.sim.spikes << " spikes, "
            << snn.sim.deliveries << " synaptic events, T = "
            << snn.execution_time << " steps\n";
  std::cout << "Dijkstra:    " << ref.ops.total() << " operations\n\n";

  Table t({"platform", "pJ/spike", "energy (J)", "chips for this net"});
  for (const auto& p : analysis::platforms()) {
    if (p.is_cpu) {
      t.add_row({p.name + " (Dijkstra)", "-",
                 Table::sci(analysis::cpu_energy_joules(ref.ops.total()), 2),
                 "-"});
      continue;
    }
    const std::string energy =
        p.pj_per_spike
            ? Table::sci(analysis::spike_energy_joules(p, snn.sim.spikes), 2)
            : "-";
    const std::string chips =
        p.neurons_per_chip()
            ? Table::num(analysis::chips_required(p, snn.neurons))
            : "-";
    t.add_row({p.name,
               p.pj_per_spike ? Table::fixed(*p.pj_per_spike, 1) : "-", energy,
               chips});
  }
  t.set_title("Per-platform energy for the spiking run (Table 3 constants)");
  t.print(std::cout);

  std::cout << "\nCaveats: the CPU figure charges the listed 35 W at one op "
               "per 4.3 GHz cycle;\nspike energy ignores static power — both "
               "are order-of-magnitude estimates, as in the paper's survey.\n";
  return 0;
}
