// The Section-7 (1 + o(1))-approximation for k-hop SSSP (after Nanongkai's
// CONGEST algorithm): run the delay-coded spiking SSSP on O(log(kU log n))
// rounded copies of the graph, each truncated at a fixed deadline, and take
// the best rescaled estimate. The payoff is neuron count: n per scale
// instead of m·log(nU) for the exact polynomial algorithm.
//
//   ./examples/approx_sssp
#include <iomanip>
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/approx.h"

int main() {
  using namespace sga;
  Rng rng(99);
  const std::uint32_t k = 6;
  const Graph g = make_random_graph(48, 300, {1, 40}, rng);
  std::cout << "Input: " << g.summary() << ", k = " << k << "\n\n";

  const auto exact = bellman_ford_khop(g, 0, k);
  nga::ApproxKHopOptions opt;
  opt.source = 0;
  opt.k = k;
  const auto approx = approx_khop_sssp(g, opt);

  Table t({"dest", "exact dist_k", "approx", "ratio"});
  double worst = 1.0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (!exact.reachable(v)) continue;
    const double ratio =
        approx.dist[v] / static_cast<double>(exact.dist[v]);
    worst = std::max(worst, ratio);
    if (v % 4 == 0) {  // sample rows to keep the table readable
      t.add_row({Table::num(static_cast<std::int64_t>(v)),
                 Table::num(exact.dist[v]), Table::fixed(approx.dist[v], 2),
                 Table::fixed(ratio, 4)});
    }
  }
  t.set_title("Exact vs approximate k-hop distances (sampled destinations)");
  t.print(std::cout);

  std::cout << std::fixed << std::setprecision(4);
  std::cout << "\nepsilon = " << approx.epsilon << " (= 1/log2 n), guarantee "
            << "<= " << 1.0 + approx.epsilon << ", worst measured ratio "
            << worst << "\n";
  std::cout << "Scales run: " << approx.num_scales << "; neurons "
            << approx.neurons_total << " (vs " << approx.neurons_exact
            << " for the exact polynomial algorithm — the Theorem 7.2 "
               "advantage)\n";
  std::cout << "Sequential spiking time " << approx.total_time
            << " steps; parallel (scales side by side) "
            << approx.max_scale_time << " steps; " << approx.total_spikes
            << " spikes total\n";
  return 0;
}
