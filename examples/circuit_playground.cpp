// Circuit playground: build the Section-5 threshold circuits (max/min of
// d λ-bit numbers both ways, the three adders, the comparator) and the
// Figure-1 primitives (delay simulation, memory latch), run them on the
// LIF simulator, and print their Table-2-style resource profiles.
//
//   ./examples/circuit_playground
#include <iostream>

#include "circuits/adders.h"
#include "circuits/arith.h"
#include "circuits/gates.h"
#include "circuits/harness.h"
#include "circuits/max_circuits.h"
#include "circuits/primitives.h"
#include "core/table.h"
#include "snn/probe.h"
#include "snn/simulator.h"

int main() {
  using namespace sga;
  using namespace sga::circuits;

  std::cout << "== Max circuits (Theorems 5.1 / 5.2) ==\n";
  const std::vector<std::uint64_t> values{23, 7, 56, 41, 56};
  Table mt({"circuit", "result", "neurons", "depth", "max |weight|"});
  for (const auto kind : {MaxKind::kWiredOr, MaxKind::kBruteForce}) {
    snn::Network net;
    CircuitBuilder cb(net);
    const MaxCircuit c = build_max(cb, 5, 6, kind);
    const auto result = eval_max_circuit(net, c, values);
    mt.add_row({kind == MaxKind::kWiredOr ? "wired-OR max" : "brute-force max",
                Table::num(result), Table::num(c.stats.neurons),
                Table::num(static_cast<std::int64_t>(c.depth)),
                Table::fixed(c.stats.max_abs_weight, 0)});
  }
  mt.set_title("max{23, 7, 56, 41, 56} over 6-bit inputs");
  mt.print(std::cout);

  std::cout << "\n== Adders (Figure 4) ==\n";
  Table at({"adder", "13 + 58", "neurons", "depth", "max |weight|"});
  for (const auto kind :
       {AdderKind::kRipple, AdderKind::kRamosBohorquez, AdderKind::kLookahead}) {
    snn::Network net;
    CircuitBuilder cb(net);
    const AdderCircuit c = build_adder(cb, 7, kind);
    const char* name = kind == AdderKind::kRipple ? "ripple"
                       : kind == AdderKind::kRamosBohorquez
                           ? "Ramos-Bohorquez (depth 2)"
                           : "carry-lookahead";
    at.add_row({name, Table::num(eval_adder_circuit(net, c, 13, 58)),
                Table::num(c.stats.neurons),
                Table::num(static_cast<std::int64_t>(c.depth)),
                Table::fixed(c.stats.max_abs_weight, 0)});
  }
  at.print(std::cout);

  std::cout << "\n== Comparator (Figure 5A) ==\n";
  {
    snn::Network net;
    CircuitBuilder cb(net);
    const ComparatorCircuit c = build_comparator(cb, 6);
    const auto r = eval_comparator(net, c, 37, 37);
    std::cout << "compare(37, 37): ge=" << r.ge << " gt=" << r.gt
              << " eq=" << r.eq << "\n";
  }

  std::cout << "\n== Figure 1(A): delay simulation ==\n";
  {
    snn::Network net;
    const DelaySimCircuit c = build_delay_simulation(net, 12);
    snn::Simulator sim(net);
    sim.inject_spike(c.input, 5);
    snn::SimConfig cfg;
    cfg.max_time = 40;
    sim.run(cfg);
    std::cout << "input spiked at t=5, output at t=" << sim.first_spike(c.output)
              << " (emulated delay 12 with " << c.neurons << " neurons)\n";
  }

  std::cout << "\n== Figure 1(B): memory latch ==\n";
  {
    snn::Network net;
    const LatchCircuit latch = build_latch(net);
    snn::Simulator sim(net);
    sim.inject_spike(latch.set, 2);
    sim.inject_spike(latch.recall, 9);
    sim.inject_spike(latch.reset, 14);
    sim.inject_spike(latch.recall, 20);
    snn::SimConfig cfg;
    cfg.max_time = 30;
    sim.run(cfg);
    std::cout << "set@2, recall@9 -> output@" << sim.first_spike(latch.output)
              << "; reset@14; recall@20 -> "
              << (sim.last_spike(latch.output) > 20 ? "output (bug!)"
                                                    : "silent (cleared)")
              << "\n";
  }

  std::cout << "\n== Pipelining: one addition per time step ==\n";
  {
    snn::Network net;
    CircuitBuilder cb(net);
    const AdderCircuit c = build_ramos_adder(cb, 6);
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> jobs{
        {1, 2}, {10, 20}, {31, 32}, {7, 0}};
    const auto sums = eval_adder_circuit_pipelined(net, c, jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      std::cout << "  t=" << i << ": " << jobs[i].first << " + "
                << jobs[i].second << " = " << sums[i] << "\n";
    }
    std::cout << "(the same physical circuit, a new input every step)\n";
  }
  return 0;
}
