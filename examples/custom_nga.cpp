// Writing your own neuromorphic graph algorithm with the Definition-4
// framework: the paper's example computes A^k x and min-plus shortest
// paths; here we plug in a different semiring — (max, min) — to compute
// WIDEST paths (maximum bottleneck capacity) within k hops, and check it
// against a conventional reference. The same message-passing skeleton, a
// different pair of edge/node functions: that is the NGA programming model.
//
//   ./examples/custom_nga
#include <algorithm>
#include <iostream>
#include <queue>

#include "core/random.h"
#include "core/table.h"
#include "graph/generators.h"
#include "nga/model.h"

using namespace sga;

namespace {

/// Conventional reference: widest path within at most k hops via k rounds
/// of (max, min) relaxation.
std::vector<Weight> widest_khop_reference(const Graph& g, VertexId source,
                                          std::uint32_t k) {
  std::vector<Weight> width(g.num_vertices(), 0);
  width[source] = kInfiniteDistance;  // the source has unbounded capacity
  for (std::uint32_t round = 0; round < k; ++round) {
    std::vector<Weight> prev = width;
    for (const auto& e : g.edges()) {
      if (prev[e.from] == 0) continue;
      const Weight through = std::min(prev[e.from], e.length);
      width[e.to] = std::max(width[e.to], through);
    }
  }
  return width;
}

}  // namespace

int main() {
  Rng rng(505);
  const Graph g = make_random_graph(14, 50, {1, 20}, rng);
  const std::uint32_t k = 4;
  std::cout << "Widest (max bottleneck) paths within " << k << " hops on "
            << g.summary() << "\n\n";

  // The NGA: messages carry the best bottleneck seen so far. Edges take a
  // min with their capacity; nodes take a max over incoming messages and
  // their own best so far (carried as a self-message via the per-round
  // fold below).
  std::vector<nga::Message> init(g.num_vertices());
  init[0] = nga::Message{~0ULL >> 1, true};  // "infinite" capacity

  const nga::EdgeFn edge = [](const Edge& e, const nga::Message& m) {
    return nga::Message{
        std::min<std::uint64_t>(m.value, static_cast<std::uint64_t>(e.length)),
        true};
  };
  const nga::NodeFn node = [](VertexId, const std::vector<nga::Message>& in) {
    nga::Message best;
    for (const auto& m : in) {
      if (m.valid && (!best.valid || m.value > best.value)) best = m;
    }
    return best;
  };

  const auto trace = nga::run_nga(g, init, k, edge, node);

  // dist-style fold: widest within ≤ k hops = max over rounds.
  std::vector<std::uint64_t> widest(g.num_vertices(), 0);
  for (const auto& round : trace.per_round) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (round[v].valid) {
        widest[v] = std::max(widest[v], round[v].value);
      }
    }
  }

  const auto ref = widest_khop_reference(g, 0, k);
  Table t({"vertex", "NGA widest", "reference", "match"});
  bool all_match = true;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    const std::uint64_t expect =
        ref[v] >= kInfiniteDistance ? (~0ULL >> 1)
                                    : static_cast<std::uint64_t>(ref[v]);
    const bool ok = widest[v] == expect;
    all_match &= ok;
    t.add_row({Table::num(static_cast<std::int64_t>(v)),
               Table::num(widest[v]), Table::num(expect), ok ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << (all_match ? "\nAll destinations match." : "\nMISMATCH!")
            << "\nMessages sent: " << trace.messages_sent
            << " across " << k << " rounds.\n"
            << "\nSwap the two lambdas and you have a different graph "
               "algorithm — the Section-5 circuits (max/min, adders) are "
               "the hardware vocabulary these functions compile to.\n";
  return all_match ? 0 : 1;
}
