// Quickstart: build a small weighted graph, solve single-source shortest
// paths with the Section-3 spiking algorithm (synapse delay = edge length,
// first spike = distance), and cross-check against Dijkstra.
//
//   ./examples/quickstart
#include <iostream>

#include "core/table.h"
#include "graph/dijkstra.h"
#include "graph/graph.h"
#include "nga/sssp_event.h"

int main() {
  using namespace sga;

  // A little road network: 6 intersections, weighted one-way streets.
  Graph g(6);
  g.add_edge(0, 1, 7);
  g.add_edge(0, 2, 2);
  g.add_edge(2, 1, 3);
  g.add_edge(1, 3, 4);
  g.add_edge(2, 3, 9);
  g.add_edge(3, 4, 1);
  g.add_edge(2, 4, 12);
  g.add_edge(4, 5, 2);
  g.add_edge(1, 5, 20);

  std::cout << "Input: " << g.summary() << "\n\n";

  // Neuromorphic SSSP: one LIF neuron per vertex, delay-coded edges.
  nga::SpikingSsspOptions opt;
  opt.source = 0;
  const auto snn = nga::spiking_sssp(g, opt);

  // Conventional baseline.
  const auto ref = dijkstra(g, 0);

  Table t({"vertex", "spiking dist", "dijkstra dist", "spiking parent"});
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    t.add_row({Table::num(static_cast<std::int64_t>(v)),
               snn.reachable(v) ? Table::num(snn.dist[v]) : "inf",
               ref.reachable(v) ? Table::num(ref.dist[v]) : "inf",
               snn.parent[v] == kNoVertex
                   ? "-"
                   : Table::num(static_cast<std::int64_t>(snn.parent[v]))});
  }
  t.set_title("Single-source shortest paths from vertex 0");
  t.print(std::cout);

  std::cout << "\nSNN execution time T = " << snn.execution_time
            << " time steps (= the largest finite distance)\n"
            << "Network: " << snn.neurons << " neurons, " << snn.synapses
            << " synapses, " << snn.sim.spikes << " spikes total\n"
            << "(each vertex spikes exactly once — event-driven efficiency)\n";
  return 0;
}
