// k-hop constrained routing: find the cheapest route that uses at most k
// links — the paper's flagship problem (Section 4) — on a random "network
// topology", with both gate-level neuromorphic algorithms (the
// pseudopolynomial TTL algorithm of Section 4.1 and the polynomial
// message-passing algorithm of Section 4.2), cross-checked against
// Bellman–Ford.
//
// The hop constraint matters in networking: each hop adds processing
// latency/jitter, so operators bound hops even when longer-hop routes are
// "shorter" in pure link cost.
//
//   ./examples/khop_routing [k]
#include <cstdlib>
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "graph/bellman_ford.h"
#include "graph/generators.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"

int main(int argc, char** argv) {
  using namespace sga;
  const std::uint32_t k = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 3;

  Rng rng(2021);
  const Graph net = make_random_graph(24, 96, {1, 10}, rng);
  std::cout << "Network: " << net.summary() << ", hop budget k = " << k
            << "\n\n";

  const auto ref = bellman_ford_khop(net, 0, k);

  nga::KHopTtlOptions ttl_opt;
  ttl_opt.source = 0;
  ttl_opt.k = k;
  const auto ttl = nga::khop_sssp_ttl(net, ttl_opt);

  nga::KHopPolyOptions poly_opt;
  poly_opt.source = 0;
  poly_opt.k = k;
  const auto poly = nga::khop_sssp_poly(net, poly_opt);

  Table t({"dest", "Bellman-Ford", "TTL NGA (4.1)", "poly NGA (4.2)"});
  auto cell = [](Weight w) {
    return w >= kInfiniteDistance ? std::string("unreach") : Table::num(w);
  };
  for (VertexId v = 1; v < net.num_vertices(); ++v) {
    t.add_row({Table::num(static_cast<std::int64_t>(v)), cell(ref.dist[v]),
               cell(ttl.dist[v]), cell(poly.dist[v])});
  }
  t.set_title("k-hop constrained distances from node 0");
  t.print(std::cout);

  std::cout << "\nTTL algorithm:  " << ttl.neurons << " neurons ("
            << ttl.lambda << "-bit TTL messages, edge-length scale "
            << ttl.scale << "), T = " << ttl.execution_time << " steps, "
            << ttl.sim.spikes << " spikes\n";
  std::cout << "Poly algorithm: " << poly.neurons << " neurons ("
            << poly.lambda << "-bit distance messages, round period "
            << poly.round_period << "), T = " << poly.execution_time
            << " steps, " << poly.sim.spikes << " spikes\n";
  std::cout << "Conventional:   " << ref.ops.total() << " operations (O(km))\n";
  return 0;
}
