// Crossbar embedding (Section 4.4): program an arbitrary graph into the
// stacked grid H_n by assigning Type-2 delays, run the spiking SSSP on the
// embedded hardware graph, and measure the O(n)-factor embedding cost the
// paper's Table 1 accounts for. Also demonstrates the embed → unembed →
// embed-another-graph protocol with O(m) delay writes per step.
//
//   ./examples/crossbar_embedding
#include <iostream>

#include "core/random.h"
#include "core/table.h"
#include "crossbar/embedding.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"

int main() {
  using namespace sga;
  Rng rng(7);
  const Graph g = make_random_graph(10, 35, {1, 6}, rng);
  std::cout << "Input: " << g.summary() << "\n\n";

  // Direct spiking run (input graph == hardware graph).
  nga::SpikingSsspOptions direct_opt;
  direct_opt.source = 0;
  const auto direct = nga::spiking_sssp(g, direct_opt);

  // Crossbar run: embed into H_10 (200 neurons) and spike on the hardware.
  const auto onxbar = crossbar::spiking_sssp_on_crossbar(g, 0);

  const auto ref = dijkstra(g, 0);
  Table t({"vertex", "dijkstra", "spiking (direct)", "spiking (crossbar)"});
  auto cell = [](Weight w) {
    return w >= kInfiniteDistance ? std::string("inf") : Table::num(w);
  };
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    t.add_row({Table::num(static_cast<std::int64_t>(v)), cell(ref.dist[v]),
               cell(direct.dist[v]), cell(onxbar.dist[v])});
  }
  t.set_title("Distances from vertex 0 (three implementations agree)");
  t.print(std::cout);

  std::cout << "\nDirect network:   " << direct.neurons << " neurons, T = "
            << direct.execution_time << " steps\n";
  std::cout << "Crossbar network: " << onxbar.neurons
            << " neurons (2n^2), T = " << onxbar.execution_time
            << " steps — an x" << onxbar.scale
            << " slowdown, the Section 4.5 embedding cost (scale = ceil(2n / "
               "min edge length))\n\n";

  // The multi-graph protocol: re-program the same hardware for a second
  // graph, paying only O(m) delay writes.
  crossbar::CrossbarMachine machine(10);
  const auto emb1 = crossbar::embed(machine, g);
  crossbar::unembed(machine, g);
  const Graph g2 = make_grid_graph(3, 3, {2, 5}, rng);
  const auto emb2 = crossbar::embed(machine, g2);
  std::cout << "Re-programming the crossbar: embed G1 (" << emb1.delay_writes
            << " delay writes) -> unembed -> embed G2 (" << emb2.delay_writes
            << " delay writes); total writes " << machine.delay_writes()
            << " = m1 + m1 + m2\n";
  return 0;
}
