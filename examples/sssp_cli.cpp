// Command-line front end: read a graph in DIMACS .gr format (or generate a
// random one), solve with a chosen algorithm, print distances and cost
// metrics. Demonstrates the I/O module and gives the library a
// shell-scriptable surface.
//
//   ./examples/sssp_cli --algo spiking --source 0 < graph.gr
//   ./examples/sssp_cli --algo khop-poly --k 4 --random 32 128
//   ./examples/sssp_cli --algo all --random 16 64 --seed 7
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/random.h"
#include "core/table.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "nga/khop_poly.h"
#include "nga/khop_ttl.h"
#include "nga/sssp_event.h"

using namespace sga;

namespace {

void usage() {
  std::cout <<
      R"(usage: sssp_cli [options] [< graph.gr]
  --algo NAME     spiking | khop-ttl | khop-poly | dijkstra | all  (default: spiking)
  --source V      source vertex (default 0)
  --k K           hop budget for the k-hop algorithms (default 4)
  --random N M    generate a random graph instead of reading DIMACS
  --seed S        RNG seed for --random (default 1)
  --max-len U     max edge length for --random (default 10)
)";
}

void print_dists(const std::string& name, const std::vector<Weight>& dist) {
  Table t({"vertex", "distance"});
  for (VertexId v = 0; v < dist.size(); ++v) {
    t.add_row({Table::num(static_cast<std::int64_t>(v)),
               dist[v] >= kInfiniteDistance ? "inf" : Table::num(dist[v])});
  }
  t.set_title(name);
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string algo = "spiking";
  VertexId source = 0;
  std::uint32_t k = 4;
  std::size_t rand_n = 0, rand_m = 0;
  std::uint64_t seed = 1;
  Weight max_len = 10;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--algo") {
      algo = next("--algo");
    } else if (arg == "--source") {
      source = static_cast<VertexId>(std::stoul(next("--source")));
    } else if (arg == "--k") {
      k = static_cast<std::uint32_t>(std::stoul(next("--k")));
    } else if (arg == "--random") {
      rand_n = std::stoul(next("--random"));
      rand_m = std::stoul(next("--random m"));
    } else if (arg == "--seed") {
      seed = std::stoull(next("--seed"));
    } else if (arg == "--max-len") {
      max_len = static_cast<Weight>(std::stoll(next("--max-len")));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage();
      return 2;
    }
  }

  Graph g;
  try {
    if (rand_n > 0) {
      Rng rng(seed);
      g = make_random_graph(rand_n, rand_m, {1, max_len}, rng);
    } else {
      g = read_dimacs(std::cin);
    }
  } catch (const Error& e) {
    std::cerr << "failed to load graph: " << e.what() << "\n";
    return 1;
  }
  std::cout << "Loaded " << g.summary() << "\n\n";
  if (source >= g.num_vertices()) {
    std::cerr << "source out of range\n";
    return 2;
  }

  try {
    if (algo == "spiking" || algo == "all") {
      nga::SpikingSsspOptions opt;
      opt.source = source;
      const auto r = nga::spiking_sssp(g, opt);
      print_dists("spiking SSSP (Section 3)", r.dist);
      std::cout << "T = " << r.execution_time << " steps, " << r.sim.spikes
                << " spikes, " << r.neurons << " neurons\n\n";
    }
    if (algo == "khop-ttl" || algo == "all") {
      nga::KHopTtlOptions opt;
      opt.source = source;
      opt.k = k;
      const auto r = nga::khop_sssp_ttl(g, opt);
      print_dists("k-hop TTL (Section 4.1), k=" + std::to_string(k), r.dist);
      std::cout << "T = " << r.execution_time << " steps, " << r.sim.spikes
                << " spikes, " << r.neurons << " neurons, scale " << r.scale
                << "\n\n";
    }
    if (algo == "khop-poly" || algo == "all") {
      nga::KHopPolyOptions opt;
      opt.source = source;
      opt.k = k;
      const auto r = nga::khop_sssp_poly(g, opt);
      print_dists("k-hop poly (Section 4.2), k=" + std::to_string(k), r.dist);
      std::cout << "T = " << r.execution_time << " steps (" << k
                << " rounds of " << r.round_period << "), " << r.sim.spikes
                << " spikes, " << r.neurons << " neurons\n\n";
    }
    if (algo == "dijkstra" || algo == "all") {
      const auto r = dijkstra(g, source);
      print_dists("Dijkstra (conventional reference)", r.dist);
      std::cout << r.ops.total() << " operations\n\n";
    }
    if (algo != "spiking" && algo != "khop-ttl" && algo != "khop-poly" &&
        algo != "dijkstra" && algo != "all") {
      std::cerr << "unknown algorithm: " << algo << "\n";
      usage();
      return 2;
    }
  } catch (const Error& e) {
    std::cerr << "run failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
