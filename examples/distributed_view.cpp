// The distributed-computing view of neuromorphic graph algorithms
// (Section 2.2): one workload, four computational lenses.
//  1. the (min,+) NGA executed directly (Definition 4);
//  2. the same NGA simulated in CONGEST (one round per round, λ-bit
//     messages);
//  3. the Section-3 spiking network simulated in plain CONGEST
//     (1-bit messages, one round per time step);
//  4. the same algorithm in the paper's proposed delay-CONGEST model
//     (programmable edge delays, 1-bit messages, L rounds total).
//
//   ./examples/distributed_view
#include <iostream>

#include "congest/congest.h"
#include "core/random.h"
#include "core/table.h"
#include "graph/bellman_ford.h"
#include "graph/dijkstra.h"
#include "graph/generators.h"
#include "nga/sssp_event.h"

int main() {
  using namespace sga;
  Rng rng(31337);
  const Graph g = make_random_graph(16, 56, {1, 7}, rng);
  const std::uint32_t k = 5;
  std::cout << "Workload: k-hop / SSSP on " << g.summary() << "\n\n";

  // 1. CONGEST-native Bellman-Ford (the baseline Section 7 builds on).
  const auto cbf = congest::congest_bellman_ford(g, 0, k);
  const auto ref = bellman_ford_khop(g, 0, k);
  std::size_t agree = 0;
  for (VertexId v = 0; v < 16; ++v) agree += (cbf.dist[v] == ref.dist[v]);
  std::cout << "CONGEST Bellman-Ford (k=" << k << "): " << cbf.stats.rounds
            << " rounds, " << cbf.stats.messages << " messages of up to "
            << cbf.stats.max_bits_used << " bits; " << agree
            << "/16 distances match the reference\n";

  // 2. The Section-3 SNN simulated in plain CONGEST: 1-bit messages, one
  //    round per discrete time step.
  const snn::Network net = nga::build_sssp_network(g);
  const auto dj = dijkstra(g, 0);
  Weight ecc = 0;
  for (VertexId v = 0; v < 16; ++v) {
    if (dj.reachable(v)) ecc = std::max(ecc, dj.dist[v]);
  }
  const auto snn_sim = congest::simulate_snn_in_congest(net.compile(), {{0, 0}}, ecc);
  std::cout << "SNN-in-CONGEST: " << snn_sim.stats.rounds
            << " rounds (one per time step), " << snn_sim.stats.messages
            << " single-bit messages, " << snn_sim.spike_log.size()
            << " spikes reproduced\n";

  // 3. Delay-CONGEST (the paper's proposed future model): edge delays do
  //    the timing work, so the whole SSSP needs L rounds and m bits.
  const auto dc = congest::delayed_congest_sssp(g, 0, ecc + 1);
  agree = 0;
  for (VertexId v = 0; v < 16; ++v) agree += (dc.dist[v] == dj.dist[v]);
  std::cout << "Delay-CONGEST SSSP: " << dc.stats.rounds << " rounds (= L+1), "
            << dc.stats.messages << " one-bit messages; " << agree
            << "/16 distances match Dijkstra\n\n";

  Table t({"model", "rounds", "messages", "bits/message"});
  t.add_row({"CONGEST Bellman-Ford", Table::num(cbf.stats.rounds),
             Table::num(cbf.stats.messages),
             Table::num(cbf.stats.max_bits_used)});
  t.add_row({"SNN in CONGEST", Table::num(snn_sim.stats.rounds),
             Table::num(snn_sim.stats.messages), "1"});
  t.add_row({"delay-CONGEST (paper's proposal)", Table::num(dc.stats.rounds),
             Table::num(dc.stats.messages), "1"});
  t.set_title("The same problem under three distributed models");
  t.print(std::cout);

  std::cout << "\nReading: CONGEST pays in bandwidth (log-width messages) or "
               "in rounds; programmable delays move the timing into the "
               "fabric, which is exactly the neuromorphic trick (Section "
               "2.2's \"suggests a CONGEST-like model with programmable "
               "delays\").\n";
  return 0;
}
